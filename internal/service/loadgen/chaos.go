package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"varpower/internal/service"
)

// ChaosOptions parameterises a chaos-under-load check: sustained solve
// traffic through a shard router while a shard is killed (and optionally
// restarted) mid-run.
type ChaosOptions struct {
	// RouterURL is the shard router front.
	RouterURL string
	// Request is the solve the load repeats; zero value selects the loadgen
	// default.
	Request service.SolveRequest
	// Concurrency is the load goroutine count (default 4).
	Concurrency int
	// Duration is the total load window (default 3s); KillAfter is when
	// Kill fires inside it (default Duration/3).
	Duration  time.Duration
	KillAfter time.Duration
	// Kill ungracefully terminates the system's primary shard (required).
	Kill func()
	// Restart optionally revives the killed shard over the same state
	// directory and returns its base URL once listening. When set, the
	// check gates the revived shard's first solve: served within
	// FirstSolveBudget, from restored (cached) state, at the pre-kill PVT
	// generation, with the restored flag up.
	Restart func() (string, error)
	// FirstSolveBudget bounds the restarted shard's first solve (default 1s).
	FirstSolveBudget time.Duration
	// RequestTimeout bounds every load request; a request that exceeds it
	// counts as hung — a budget violation, the failure mode the breaker
	// exists to prevent (default 5s).
	RequestTimeout time.Duration
}

// withDefaults fills zero fields.
func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.KillAfter <= 0 {
		o.KillAfter = o.Duration / 3
	}
	if o.FirstSolveBudget <= 0 {
		o.FirstSolveBudget = time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.Request.System == "" {
		o.Request = service.SolveRequest{
			System:      "HA8K",
			Workload:    "*DGEMM",
			Scheme:      "VaPc",
			BudgetWatts: 20000,
		}
	}
	return o
}

// ChaosReport is a chaos check's outcome.
type ChaosReport struct {
	// Requests, OK and Budgeted count the load window's outcomes: OK is
	// 200s, Budgeted is 429/503 sheds — the only errors the budget allows.
	Requests int
	OK       int
	Budgeted int
	// OKAfterKill counts 200s answered after Kill fired — the proof the
	// failover path carried traffic.
	OKAfterKill int
	// Violations are outcomes outside the budget: transport errors, hung
	// requests, unexpected statuses, or 200 bodies that diverged from the
	// pre-kill capture (first few retained verbatim).
	Violations []string

	// PreGeneration is the system's PVT generation captured before the kill.
	PreGeneration uint64

	// Restart gates (zero / false when ChaosOptions.Restart is unset).
	FirstSolve            time.Duration
	FirstSolveDisposition string
	RestoredFlag          bool
	GenerationContinuity  bool
	RestartChecked        bool
}

// maxRetainedViolations caps the violation list.
const maxRetainedViolations = 8

// Verify returns nil when the run stayed inside the error budget and, if a
// restart was exercised, the revived shard met every warm-restore gate.
func (r ChaosReport) Verify(budget time.Duration) error {
	if len(r.Violations) > 0 {
		return fmt.Errorf("chaos: %d budget violations, first: %s", len(r.Violations), r.Violations[0])
	}
	if r.OKAfterKill == 0 {
		return fmt.Errorf("chaos: no successful solve after the kill — failover never carried traffic")
	}
	if !r.RestartChecked {
		return nil
	}
	if r.FirstSolve > budget {
		return fmt.Errorf("chaos: restarted shard's first solve took %s, budget %s", r.FirstSolve, budget)
	}
	if r.FirstSolveDisposition != string(service.DispHit) {
		return fmt.Errorf("chaos: restarted shard's first solve disposition %q, want %q (restored cache must answer)",
			r.FirstSolveDisposition, service.DispHit)
	}
	if !r.GenerationContinuity {
		return fmt.Errorf("chaos: restarted shard's PVT generation diverged from pre-kill generation %d", r.PreGeneration)
	}
	if !r.RestoredFlag {
		return fmt.Errorf("chaos: restarted shard does not report restored=true")
	}
	return nil
}

// chaosSolve issues one raw solve and returns status, body and the cache
// disposition header. Raw HTTP (no client retries) so every individual
// outcome is visible to the budget accounting.
func chaosSolve(ctx context.Context, hc *http.Client, baseURL string, body []byte) (int, []byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, "", err
	}
	return resp.StatusCode, b, resp.Header.Get("X-Varpower-Cache"), nil
}

// systemRow fetches one system's /v1/systems row from baseURL.
func systemRow(ctx context.Context, hc *http.Client, baseURL, system string) (gen uint64, restored bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/systems", nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var out struct {
		Systems []struct {
			Name          string `json:"name"`
			PVTGeneration uint64 `json:"pvt_generation"`
			Restored      bool   `json:"restored"`
		} `json:"systems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, false, err
	}
	for _, s := range out.Systems {
		if s.Name == system {
			return s.PVTGeneration, s.Restored, nil
		}
	}
	return 0, false, fmt.Errorf("system %q not listed by %s", system, baseURL)
}

// ChaosCheck runs the chaos-under-load scenario: capture a reference solve
// through the router, sustain concurrent load, kill the owning shard
// mid-window, and assert the router held the error budget — only 429/503
// sheds, no hung requests, and every 200 byte-identical to the reference.
// With a Restart hook it then revives the shard and gates its warm
// restore.
func ChaosCheck(ctx context.Context, opts ChaosOptions) (ChaosReport, error) {
	opts = opts.withDefaults()
	hc := &http.Client{}
	reqBody, err := json.Marshal(opts.Request)
	if err != nil {
		return ChaosReport{}, err
	}

	// Reference capture: the byte-identity baseline every later 200 must
	// match, and the generation the restarted shard must come back at.
	status, refBody, _, err := chaosSolve(ctx, hc, opts.RouterURL, reqBody)
	if err != nil || status != http.StatusOK {
		return ChaosReport{}, fmt.Errorf("chaos: reference solve failed (status %d): %w", status, err)
	}
	rep := ChaosReport{}
	if gen, _, err := systemRow(ctx, hc, opts.RouterURL, opts.Request.System); err == nil {
		rep.PreGeneration = gen
	}

	var (
		mu       sync.Mutex
		killedAt time.Time
		wg       sync.WaitGroup
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(rep.Violations) < maxRetainedViolations {
			rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		} else {
			rep.Violations[maxRetainedViolations-1] = "... more suppressed"
		}
	}

	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for loadCtx.Err() == nil {
				rctx, cancel := context.WithTimeout(loadCtx, opts.RequestTimeout)
				start := time.Now()
				status, body, _, err := chaosSolve(rctx, hc, opts.RouterURL, reqBody)
				dur := time.Since(start)
				cancel()
				if loadCtx.Err() != nil {
					return // shutdown races look like errors; don't count them
				}
				mu.Lock()
				rep.Requests++
				killed := !killedAt.IsZero()
				mu.Unlock()
				switch {
				case err != nil:
					violate("transport error after %s: %v", dur, err)
				case dur >= opts.RequestTimeout:
					violate("hung request: %s >= %s", dur, opts.RequestTimeout)
				case status == http.StatusOK:
					if !bytes.Equal(body, refBody) {
						violate("200 body diverged from reference (%d vs %d bytes)", len(body), len(refBody))
						break
					}
					mu.Lock()
					rep.OK++
					if killed {
						rep.OKAfterKill++
					}
					mu.Unlock()
				case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
					mu.Lock()
					rep.Budgeted++
					mu.Unlock()
				default:
					violate("status %d outside the 429/503 budget: %.120s", status, body)
				}
			}
		}()
	}

	// The chaos moment.
	select {
	case <-time.After(opts.KillAfter):
	case <-ctx.Done():
		stopLoad()
		wg.Wait()
		return rep, ctx.Err()
	}
	opts.Kill()
	mu.Lock()
	killedAt = time.Now()
	mu.Unlock()

	select {
	case <-time.After(opts.Duration - opts.KillAfter):
	case <-ctx.Done():
	}
	stopLoad()
	wg.Wait()

	if opts.Restart == nil {
		return rep, nil
	}

	// Revive and gate the warm restore. Process boot and health-probe
	// convergence are excluded from the first-solve budget — the budget
	// measures serving from restored state, not fork+exec.
	addr, err := opts.Restart()
	if err != nil {
		return rep, fmt.Errorf("chaos: restart: %w", err)
	}
	rep.RestartChecked = true
	healthDeadline := time.Now().Add(15 * time.Second)
	for {
		rctx, cancel := context.WithTimeout(ctx, time.Second)
		req, _ := http.NewRequestWithContext(rctx, http.MethodGet, addr+"/healthz", nil)
		resp, err := hc.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(healthDeadline) {
			return rep, fmt.Errorf("chaos: restarted shard never became healthy at %s", addr)
		}
		time.Sleep(25 * time.Millisecond)
	}

	start := time.Now()
	status, body, disp, err := chaosSolve(ctx, hc, addr, reqBody)
	rep.FirstSolve = time.Since(start)
	rep.FirstSolveDisposition = disp
	if err != nil || status != http.StatusOK {
		return rep, fmt.Errorf("chaos: restarted shard's first solve failed (status %d): %w", status, err)
	}
	if !bytes.Equal(body, refBody) {
		return rep, fmt.Errorf("chaos: restarted shard's first solve body diverged from the pre-kill reference")
	}
	gen, restored, err := systemRow(ctx, hc, addr, opts.Request.System)
	if err != nil {
		return rep, fmt.Errorf("chaos: restarted shard systems row: %w", err)
	}
	rep.RestoredFlag = restored
	rep.GenerationContinuity = gen == rep.PreGeneration
	return rep, nil
}

// WriteChaosReport renders the report for humans (the -selftest output).
func WriteChaosReport(w io.Writer, r ChaosReport) {
	fmt.Fprintf(w, "chaos: %d requests (%d ok, %d shed, %d ok after kill, %d violations)\n",
		r.Requests, r.OK, r.Budgeted, r.OKAfterKill, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  violation: %s\n", v)
	}
	if r.RestartChecked {
		fmt.Fprintf(w, "chaos: restarted shard first solve %s disposition=%s restored=%v generation-continuity=%v (pre-kill gen %d)\n",
			r.FirstSolve.Round(time.Millisecond), r.FirstSolveDisposition, r.RestoredFlag, r.GenerationContinuity, r.PreGeneration)
	}
}
