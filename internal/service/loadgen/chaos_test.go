// Chaos tests live in package loadgen_test so they can front real
// service.Server shards with a shard.Router — the full failover topology,
// in process.
package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"varpower/internal/service"
	"varpower/internal/service/client"
	"varpower/internal/service/loadgen"
	"varpower/internal/shard"
)

// TestChaosCheckFailoverAndWarmRestart is the harness's own end-to-end
// proof: a two-shard fleet with a shared state directory, the primary
// killed mid-load, the secondary adopting its snapshot, and the primary
// revived over the same directory passing every warm-restore gate.
func TestChaosCheckFailoverAndWarmRestart(t *testing.T) {
	stateDir := t.TempDir()
	ctx := context.Background()

	// Ownership depends only on member names; compute it before boot.
	dummy, err := shard.ParseSet("a=h:1,b=h:2")
	if err != nil {
		t.Fatal(err)
	}
	primaryName := dummy.Primary("HA8K").Name
	secondaryName := "a"
	if primaryName == "a" {
		secondaryName = "b"
	}

	newShard := func(eager, lazy []string) (*service.Server, *httptest.Server) {
		svc, err := service.New(service.Config{
			Systems:     eager,
			LazySystems: lazy,
			Modules:     16,
			Seed:        0x5c15,
			Workers:     1,
			StateDir:    stateDir,
		})
		if err != nil {
			t.Fatalf("service.New: %v", err)
		}
		hs := httptest.NewServer(svc.Handler())
		return svc, hs
	}

	primarySvc, primaryHS := newShard([]string{"HA8K"}, nil)
	_, secondaryHS := newShard([]string{"Cab"}, []string{"HA8K"})
	t.Cleanup(secondaryHS.Close)

	// Give the primary non-trivial state: a recalibration (generation 1)
	// so the warm-restore generation-continuity gate is meaningful, then a
	// snapshot so the secondary has something to adopt.
	pc := client.New(primaryHS.URL)
	if _, err := pc.Recalibrate(ctx, service.RecalibrateRequest{System: "HA8K", Modules: []int{0, 1}}); err != nil {
		t.Fatalf("recalibrate: %v", err)
	}
	req := service.SolveRequest{System: "HA8K", Workload: "*DGEMM", Scheme: "VaPc", BudgetWatts: 20000}
	if _, _, err := pc.Solve(ctx, req); err != nil {
		t.Fatalf("prime solve: %v", err)
	}
	if _, err := primarySvc.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	set, err := shard.ParseSet(strings.Join([]string{
		primaryName + "=" + primaryHS.URL,
		secondaryName + "=" + secondaryHS.URL,
	}, ","))
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Set:           set,
		ProbeInterval: time.Hour, // request-driven failover only; keep the test deterministic
		Breaker:       shard.BreakerConfig{FailThreshold: 2, OpenBackoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router.Handler())
	t.Cleanup(front.Close)

	rep, err := loadgen.ChaosCheck(ctx, loadgen.ChaosOptions{
		RouterURL:   front.URL,
		Request:     req,
		Concurrency: 3,
		Duration:    1200 * time.Millisecond,
		KillAfter:   300 * time.Millisecond,
		Kill: func() {
			primaryHS.CloseClientConnections()
			primaryHS.Close()
		},
		Restart: func() (string, error) {
			svc, err := service.New(service.Config{
				Systems:  []string{"HA8K"},
				Modules:  16,
				Seed:     0x5c15,
				Workers:  1,
				StateDir: stateDir,
			})
			if err != nil {
				return "", err
			}
			hs := httptest.NewServer(svc.Handler())
			t.Cleanup(hs.Close)
			return hs.URL, nil
		},
	})
	if err != nil {
		t.Fatalf("ChaosCheck: %v", err)
	}
	loadgen.WriteChaosReport(testWriter{t}, rep)
	if err := rep.Verify(time.Second); err != nil {
		t.Fatalf("chaos gates: %v", err)
	}
	if rep.PreGeneration != 1 {
		t.Fatalf("pre-kill generation = %d, want 1 (the recalibration)", rep.PreGeneration)
	}
	if rep.OK == 0 || rep.Requests == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
}

// testWriter adapts t.Logf for WriteChaosReport.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
