package loadgen

import (
	"context"
	"fmt"
	"io"
	"time"

	"varpower/internal/service"
	"varpower/internal/service/client"
)

// DriftOptions parameterises DriftCheck.
type DriftOptions struct {
	// BaseURL is the daemon under test — one serving a *drifting* cluster
	// (service.Config.Faults with at least one cap-drift event), or the
	// check fails at the "detector flagged nothing" step, which is the point.
	BaseURL string
	// System names the owned preset to exercise (default "HA8K").
	System string
	// Workload and Scheme shape the jobs and solves (defaults "MHD", "VaPc"
	// — a capped scheme, so drifted enforcement is actually observable).
	Workload string
	Scheme   string
	// BudgetPerModuleW scales the system budget (default 80 W/module, the
	// fleet experiment's constrained operating point — caps bind, so a
	// drifted module genuinely draws its drift factor over the allocation).
	BudgetPerModuleW float64
	// Jobs is how many runs feed the attribution collector (default 3).
	Jobs int
}

// withDefaults fills zero fields.
func (o DriftOptions) withDefaults() DriftOptions {
	if o.System == "" {
		o.System = "HA8K"
	}
	if o.Workload == "" {
		o.Workload = "MHD"
	}
	if o.Scheme == "" {
		o.Scheme = "VaPc"
	}
	if o.BudgetPerModuleW <= 0 {
		o.BudgetPerModuleW = 80
	}
	if o.Jobs <= 0 {
		o.Jobs = 3
	}
	return o
}

// DriftReport is a DriftCheck outcome: the observed drift state and the
// before/after evidence that recalibration changed the served allocation
// and invalidated the solve cache.
type DriftReport struct {
	System  string
	Jobs    int
	Flagged []int
	// Residuals maps each flagged module to its windowed observed/predicted
	// power ratio at detection time.
	Residuals map[int]float64
	// GenBefore/GenAfter are the PVT generations around the recalibration.
	GenBefore, GenAfter uint64
	// AlphaBefore/AlphaAfter are the solved α against the install-time and
	// refreshed tables.
	AlphaBefore, AlphaAfter float64
	// DispRepeat is the second pre-recalibration solve's cache disposition
	// (must be a hit); DispAfter the post-recalibration one (must be a miss).
	DispRepeat, DispAfter string
}

// DriftCheck drives the continuous-observability loop end to end through
// the public API, failing loudly at the first broken link:
//
//  1. run Jobs full jobs on the owned (drifting) system, feeding the
//     attribution collector;
//  2. solve the same budgeting question twice — the repeat must be a cache
//     hit;
//  3. GET /v1/attrib must flag at least one drifting module;
//  4. POST /v1/recalibrate (detector's flagged set) must bump the PVT
//     generation;
//  5. the same solve again must be a cache miss (generation-keyed caches)
//     with a different α — the refreshed table really changed the answer.
func DriftCheck(ctx context.Context, opts DriftOptions) (*DriftReport, error) {
	opts = opts.withDefaults()
	c := client.New(opts.BaseURL)

	// Scale the budget to the system's loaded size.
	systems, err := c.Systems(ctx)
	if err != nil {
		return nil, fmt.Errorf("driftcheck: list systems: %w", err)
	}
	loaded := 0
	for _, row := range systems {
		if name, _ := row["name"].(string); name == opts.System {
			if n, ok := row["modules_loaded"].(float64); ok {
				loaded = int(n)
			}
		}
	}
	if loaded == 0 {
		return nil, fmt.Errorf("driftcheck: system %q not loaded", opts.System)
	}
	req := service.SolveRequest{
		System:      opts.System,
		Workload:    opts.Workload,
		Scheme:      opts.Scheme,
		BudgetWatts: opts.BudgetPerModuleW * float64(loaded),
	}
	rep := &DriftReport{System: opts.System, Jobs: opts.Jobs}

	// 1. Feed the collector with real runs on the owned cluster state.
	for i := 0; i < opts.Jobs; i++ {
		st, err := c.SubmitJob(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("driftcheck: submit job %d: %w", i, err)
		}
		if st, err = c.WaitJob(ctx, st.ID, 10*time.Millisecond); err != nil {
			return nil, fmt.Errorf("driftcheck: wait job %d: %w", i, err)
		}
		if st.State != service.JobDone {
			return nil, fmt.Errorf("driftcheck: job %d ended %s: %s", i, st.State, st.Error)
		}
	}

	// 2. Solve twice: the repeat proves the cache serves this key.
	first, _, err := c.Solve(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("driftcheck: pre-recalibration solve: %w", err)
	}
	rep.AlphaBefore = first.Alpha
	repeat, disp, err := c.Solve(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("driftcheck: repeat solve: %w", err)
	}
	rep.DispRepeat = disp
	if service.Disposition(disp) != service.DispHit {
		return nil, fmt.Errorf("driftcheck: repeat solve disposition %q, want %q", disp, service.DispHit)
	}
	if repeat.Alpha != first.Alpha {
		return nil, fmt.Errorf("driftcheck: repeat solve α %v != first %v", repeat.Alpha, first.Alpha)
	}

	// 3. The detector must have flagged the drifters.
	att, err := c.Attrib(ctx, opts.System)
	if err != nil {
		return nil, fmt.Errorf("driftcheck: attrib: %w", err)
	}
	rep.GenBefore = att.Generation
	rep.Flagged = att.Report.Flagged
	if len(rep.Flagged) == 0 {
		return nil, fmt.Errorf("driftcheck: drift detector flagged no modules after %d jobs (runs=%d samples=%d)",
			opts.Jobs, att.Report.Runs, att.Report.Samples)
	}
	rep.Residuals = make(map[int]float64, len(rep.Flagged))
	for _, m := range att.Report.Modules {
		if m.Flagged {
			rep.Residuals[m.Module] = m.Residual
		}
	}

	// 4. Recalibrate the flagged set.
	rec, err := c.Recalibrate(ctx, service.RecalibrateRequest{System: opts.System})
	if err != nil {
		return nil, fmt.Errorf("driftcheck: recalibrate: %w", err)
	}
	rep.GenAfter = rec.Generation
	if rec.Generation <= att.Generation {
		return nil, fmt.Errorf("driftcheck: recalibration left generation at %d (was %d)", rec.Generation, att.Generation)
	}

	// 5. The refreshed table must change the served answer, uncached.
	after, disp, err := c.Solve(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("driftcheck: post-recalibration solve: %w", err)
	}
	rep.DispAfter = disp
	rep.AlphaAfter = after.Alpha
	if service.Disposition(disp) == service.DispHit {
		return nil, fmt.Errorf("driftcheck: post-recalibration solve was a cache hit — generation did not invalidate the solve cache")
	}
	if after.Alpha == first.Alpha {
		return nil, fmt.Errorf("driftcheck: α unchanged at %v after recalibrating modules %v", after.Alpha, rep.Flagged)
	}
	return rep, nil
}

// WriteDriftReport renders the report for humans (the -selftest output).
func WriteDriftReport(w io.Writer, r *DriftReport) {
	fmt.Fprintf(w, "drift: %d jobs on %s → flagged %v", r.Jobs, r.System, r.Flagged)
	for _, m := range r.Flagged {
		fmt.Fprintf(w, " (module %d residual %.3f)", m, r.Residuals[m])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "drift: recalibrated gen %d → %d; α %.4f → %.4f (repeat=%s, post=%s)\n",
		r.GenBefore, r.GenAfter, r.AlphaBefore, r.AlphaAfter, r.DispRepeat, r.DispAfter)
}
