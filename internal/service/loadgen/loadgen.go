// Package loadgen hammers a varpowerd instance through the Go client and
// reports achieved throughput and cache effectiveness. It is the proof
// behind the serving layer's headline claim: content-keyed caching plus
// singleflight coalescing turn the per-request α-solve from a
// calibration-bound compute into a map lookup, so repeated-key throughput is
// a large multiple of cold-solve throughput.
//
// It runs two phases against POST /v1/solve:
//
//   - cold: every request carries a unique seed, so each one instantiates
//     and calibrates a fresh system replica — the uncached worst case;
//   - hot: N goroutines all request the same key, so after the first miss
//     (or a coalesced wait) every answer is served from the rendered-bytes
//     cache.
//
// The report compares the two phases' RPS and counts dispositions from the
// X-Varpower-Cache header, so the ≥5× acceptance criterion is measured at
// the client, through the full HTTP stack, not inferred from server
// internals.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"varpower/internal/obs"
	"varpower/internal/service"
	"varpower/internal/service/client"
)

// Options parameterises a load test.
type Options struct {
	// BaseURL is the daemon under test.
	BaseURL string
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// ColdRequests is the unique-seed request count (default 8).
	ColdRequests int
	// HotRequests is the repeated-key request count (default 2000).
	HotRequests int
	// Request is the solve the hot phase repeats; zero value selects a
	// default (HA8K, *DGEMM, VaPc, 20 kW).
	Request service.SolveRequest
	// ColdSeedBase offsets the unique seeds of the cold phase so repeated
	// runs against one daemon stay cold (default 1<<32).
	ColdSeedBase uint64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.ColdRequests <= 0 {
		o.ColdRequests = 8
	}
	if o.HotRequests <= 0 {
		o.HotRequests = 2000
	}
	if o.Request.System == "" {
		o.Request = service.SolveRequest{
			System:      "HA8K",
			Workload:    "*DGEMM",
			Scheme:      "VaPc",
			BudgetWatts: 20000,
		}
	}
	if o.ColdSeedBase == 0 {
		o.ColdSeedBase = 1 << 32
	}
	return o
}

// PhaseReport is one phase's outcome.
type PhaseReport struct {
	Requests  int
	Errors    int
	Elapsed   time.Duration
	RPS       float64
	Hits      int64
	Misses    int64
	Coalesced int64
}

// HitRate is the fraction of requests answered from a completed cache entry.
func (p PhaseReport) HitRate() float64 {
	if p.Requests == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Requests)
}

// Report is a full load-test outcome.
type Report struct {
	Cold PhaseReport
	Hot  PhaseReport

	// SLO is the daemon's burn-rate report fetched after the phases (nil
	// when the daemon runs with tracing disabled).
	SLO *obs.SLOReport
	// HotTraceHit reports whether a retained /v1/solve trace shows a
	// cache-hit span — the end-to-end proof that the hot phase was actually
	// served from cache and that tracing recorded it.
	HotTraceHit bool
}

// Speedup is hot RPS over cold RPS — the cache's measured throughput win.
func (r Report) Speedup() float64 {
	if r.Cold.RPS <= 0 {
		return 0
	}
	return r.Hot.RPS / r.Cold.RPS
}

// Run executes the two phases and returns the report. Any request error
// fails the run (a load test against a misconfigured daemon should be loud,
// not averaged away).
func Run(ctx context.Context, opts Options) (Report, error) {
	opts = opts.withDefaults()
	c := client.New(opts.BaseURL)

	// Cold phase: unique seed per request, fanned across the same goroutine
	// count as the hot phase so the comparison is apples to apples.
	cold, err := phase(ctx, c, opts.Concurrency, opts.ColdRequests, func(i int) service.SolveRequest {
		req := opts.Request
		req.Seed = opts.ColdSeedBase + uint64(i)
		return req
	})
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: cold phase: %w", err)
	}

	// Hot phase: one fixed key from every goroutine.
	hot, err := phase(ctx, c, opts.Concurrency, opts.HotRequests, func(int) service.SolveRequest {
		return opts.Request
	})
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: hot phase: %w", err)
	}
	rep := Report{Cold: cold, Hot: hot}
	rep.observe(ctx, c)
	return rep, nil
}

// observe fetches the daemon's observability side channels after the load:
// the SLO burn report and, from the trace ring, whether a hot solve recorded
// a cache-hit span. Both are best-effort — a daemon with tracing disabled
// serves 404 here, and the report's fields stay zero.
func (r *Report) observe(ctx context.Context, c *client.Client) {
	if slo, err := c.SLO(ctx); err == nil {
		r.SLO = slo
	}
	traces, err := c.Traces(ctx)
	if err != nil {
		return
	}
	for _, tv := range traces {
		if tv.Route != "/v1/solve" {
			continue
		}
		for _, sp := range tv.Spans {
			if sp.Name != "cache" {
				continue
			}
			for _, a := range sp.Attrs {
				if a.Key == "cache" && a.Val == string(service.DispHit) {
					r.HotTraceHit = true
					return
				}
			}
		}
	}
}

// VerifyObs is the selftest's trace+SLO gate: the hot phase must have left a
// cache-hit span in the trace ring, and the solve route's availability burn
// must be zero — a healthy in-process load has no business spending error
// budget. (Latency burn is deliberately not gated here: the cold phase's
// fresh-replica calibrations can legitimately cross the latency bound on a
// loaded CI machine, and that is the objective working, not a test failure.)
func (r Report) VerifyObs() error {
	if r.SLO == nil {
		return fmt.Errorf("loadgen: no SLO report (is the daemon running with tracing disabled?)")
	}
	solve := r.SLO.Route("/v1/solve")
	if solve == nil {
		return fmt.Errorf("loadgen: SLO report has no /v1/solve objective")
	}
	for _, w := range solve.Windows {
		if w.AvailabilityBurn > 0 {
			return fmt.Errorf("loadgen: /v1/solve availability burn %.3f in %s window after healthy load, want 0 (%d bad of %d)",
				w.AvailabilityBurn, w.Window, w.Bad, w.Total)
		}
	}
	if !r.HotTraceHit {
		return fmt.Errorf("loadgen: no retained /v1/solve trace with a cache-hit span")
	}
	return nil
}

// phase issues n requests across `workers` goroutines, counting dispositions.
func phase(ctx context.Context, c *client.Client, workers, n int, reqFor func(i int) service.SolveRequest) (PhaseReport, error) {
	var (
		next               atomic.Int64
		hits, misses, coal atomic.Int64
		firstErr           error
		errMu              sync.Mutex
		wg                 sync.WaitGroup
		errs               atomic.Int64
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				_, disp, err := c.Solve(ctx, reqFor(i))
				if err != nil {
					errs.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				switch service.Disposition(disp) {
				case service.DispHit:
					hits.Add(1)
				case service.DispCoalesced:
					coal.Add(1)
				default:
					misses.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rep := PhaseReport{
		Requests:  n,
		Errors:    int(errs.Load()),
		Elapsed:   elapsed,
		Hits:      hits.Load(),
		Misses:    misses.Load(),
		Coalesced: coal.Load(),
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.RPS = float64(n-rep.Errors) / s
	}
	if firstErr != nil {
		return rep, firstErr
	}
	return rep, nil
}

// WriteReport renders the report for humans (the -selftest output).
func WriteReport(w io.Writer, r Report) {
	fmt.Fprintf(w, "cold:  %5d requests in %8s  →  %10.1f req/s  (miss=%d coalesced=%d hit=%d)\n",
		r.Cold.Requests, r.Cold.Elapsed.Round(time.Millisecond), r.Cold.RPS,
		r.Cold.Misses, r.Cold.Coalesced, r.Cold.Hits)
	fmt.Fprintf(w, "hot:   %5d requests in %8s  →  %10.1f req/s  (miss=%d coalesced=%d hit=%d, hit rate %.1f%%)\n",
		r.Hot.Requests, r.Hot.Elapsed.Round(time.Millisecond), r.Hot.RPS,
		r.Hot.Misses, r.Hot.Coalesced, r.Hot.Hits, 100*r.Hot.HitRate())
	fmt.Fprintf(w, "cache speedup: %.1f× (hot RPS / cold RPS)\n", r.Speedup())
	if r.SLO != nil {
		if solve := r.SLO.Route("/v1/solve"); solve != nil {
			fmt.Fprintf(w, "slo:   /v1/solve max burn %.3f (%d bad, %d slow of %d); hot cache-hit trace: %v\n",
				solve.MaxBurn(), solve.Bad, solve.Slow, solve.Total, r.HotTraceHit)
		}
	}
}
