// Request-observability tests: the traced solve path end to end — W3C
// traceparent adoption, span trees over the real queue/cache/solve stages,
// X-Request-ID correlation, SLO burn accounting, exemplar export, the
// perfetto trace download — plus the byte-identity contract when tracing is
// off and the client's retry correlation.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"varpower/internal/obs"
	"varpower/internal/service"
	"varpower/internal/service/client"
	"varpower/internal/service/loadgen"
)

// fixedTraceparent is the W3C header the CI smoke test also pins: trace ID
// 0af7…319c, remote parent span b7ad…3331, sampled.
const (
	fixedTraceID     = "0af7651916cd43dd8448eb211c80319c"
	fixedParentSpan  = "b7ad6b7169203331"
	fixedTraceparent = "00-" + fixedTraceID + "-" + fixedParentSpan + "-01"
)

// tracedConfig is testConfig plus a per-test observer (its own ring and SLO
// state, so tests don't see each other's traffic).
func tracedConfig() (service.Config, *obs.Observer) {
	o := obs.New(obs.Config{RingSize: 128})
	cfg := testConfig()
	cfg.Obs = o
	return cfg, o
}

// postSolveTraced issues a POST /v1/solve with observability headers and
// returns body, status and selected response headers.
func postSolveTraced(t *testing.T, baseURL string, req service.SolveRequest, hdr map[string]string) ([]byte, int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, baseURL+"/v1/solve", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode, resp.Header
}

// spanByName finds the first span with the given name, or nil.
func spanByName(v obs.TraceView, name string) *obs.SpanView {
	for i := range v.Spans {
		if v.Spans[i].Name == name {
			return &v.Spans[i]
		}
	}
	return nil
}

// attrVal returns the value of an attribute key, or "".
func attrVal(sp *obs.SpanView, key string) string {
	if sp == nil {
		return ""
	}
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// assertWellFormed checks one exported entry is a tree: exactly one root
// (parentless or parented outside the entry), every other span's parent
// resolving to a span in the same entry.
func assertWellFormed(t *testing.T, v obs.TraceView) {
	t.Helper()
	ids := make(map[string]bool, len(v.Spans))
	for _, sp := range v.Spans {
		ids[sp.SpanID] = true
	}
	roots := 0
	for _, sp := range v.Spans {
		if sp.ParentID == "" || !ids[sp.ParentID] {
			roots++
			continue
		}
	}
	if roots != 1 {
		t.Fatalf("trace %s (%s): %d root spans, want exactly 1: %+v", v.TraceID, v.Route, roots, v.Spans)
	}
}

// TestTracedSolveSpanTree drives a miss-then-hit solve pair under a fixed
// traceparent and asserts the full acceptance-criteria span tree: both
// requests join the caller's trace, the first entry shows
// queue.admit/cache(miss)/calibrate/measure/solve, the second a cache(hit)
// with no solve underneath, and the trace survives in /v1/traces/{id}.
func TestTracedSolveSpanTree(t *testing.T) {
	cfg, _ := tracedConfig()
	_, hs, c := newTestServer(t, cfg)

	hdr := map[string]string{"traceparent": fixedTraceparent, "X-Request-ID": "req-outer-1"}
	b1, status, h1 := postSolveTraced(t, hs.URL, solveReq(), hdr)
	if status != http.StatusOK {
		t.Fatalf("first solve: status %d, body %s", status, b1)
	}
	hdr["X-Request-ID"] = "req-outer-2"
	b2, status, h2 := postSolveTraced(t, hs.URL, solveReq(), hdr)
	if status != http.StatusOK {
		t.Fatalf("second solve: status %d", status)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("hit body differs from miss body")
	}

	// Response headers: the caller's trace continues (same trace ID, fresh
	// span ID) and the request IDs echo back.
	for i, h := range []http.Header{h1, h2} {
		tp := h.Get("traceparent")
		if !strings.HasPrefix(tp, "00-"+fixedTraceID+"-") || !strings.HasSuffix(tp, "-01") {
			t.Fatalf("response %d traceparent = %q, want trace %s continued", i+1, tp, fixedTraceID)
		}
		if strings.Contains(tp, fixedParentSpan) {
			t.Fatalf("response %d traceparent %q reuses the caller's span ID instead of minting a root", i+1, tp)
		}
	}
	if got := h1.Get("X-Request-ID"); got != "req-outer-1" {
		t.Fatalf("X-Request-ID echo = %q, want req-outer-1", got)
	}
	if got := h2.Get("X-Request-ID"); got != "req-outer-2" {
		t.Fatalf("X-Request-ID echo = %q, want req-outer-2", got)
	}

	entries, err := c.Trace(context.Background(), fixedTraceID)
	if err != nil {
		t.Fatalf("fetch trace: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("retained entries = %d, want 2 (miss + hit)", len(entries))
	}
	miss, hit := entries[0], entries[1]
	if miss.RequestID != "req-outer-1" || hit.RequestID != "req-outer-2" {
		t.Fatalf("entry request IDs = %q, %q; want req-outer-1, req-outer-2", miss.RequestID, hit.RequestID)
	}
	for _, v := range entries {
		assertWellFormed(t, v)
		root := spanByName(v, "/v1/solve")
		if root == nil {
			t.Fatalf("entry has no /v1/solve root span: %+v", v.Spans)
		}
		if root.ParentID != fixedParentSpan {
			t.Fatalf("root parent = %q, want the caller's span %s", root.ParentID, fixedParentSpan)
		}
		if spanByName(v, "queue.admit") == nil {
			t.Fatalf("entry missing queue.admit span: %+v", v.Spans)
		}
	}
	if got := attrVal(spanByName(miss, "cache"), "cache"); got != string(service.DispMiss) {
		t.Fatalf("first entry cache attr = %q, want %q", got, service.DispMiss)
	}
	if got := attrVal(spanByName(hit, "cache"), "cache"); got != string(service.DispHit) {
		t.Fatalf("second entry cache attr = %q, want %q", got, service.DispHit)
	}
	for _, name := range []string{"calibrate", "measure", "solve"} {
		if spanByName(miss, name) == nil {
			t.Fatalf("miss entry missing %q span: %+v", name, miss.Spans)
		}
		if spanByName(hit, name) != nil {
			t.Fatalf("hit entry has a %q span; a cache hit must not recompute", name)
		}
	}
}

// TestTracedConcurrentSolves fires 32 concurrent traced clients and asserts
// every retained entry is a well-formed tree (run with -race, this is also
// the data-race gate on the span plumbing under the real handler stack).
func TestTracedConcurrentSolves(t *testing.T) {
	cfg, o := tracedConfig()
	_, hs, _ := newTestServer(t, cfg)
	const clients = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req := solveReq()
			req.Seed = uint64(9000 + i%4) // a few distinct keys: hits, misses and coalesced waits
			if _, status, _ := postSolveTraced(t, hs.URL, req, nil); status != http.StatusOK {
				t.Errorf("client %d: status %d", i, status)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	entries := o.Traces()
	if len(entries) != clients {
		t.Fatalf("retained entries = %d, want %d", len(entries), clients)
	}
	for _, rt := range entries {
		assertWellFormed(t, rt.View())
	}
}

// TestUntracedByteIdentityAnd404s is the -trace=off contract: solve bodies
// byte-identical to a traced instance's, no traceparent header minted, and
// the observability endpoints answer structured 404s.
func TestUntracedByteIdentityAnd404s(t *testing.T) {
	tracedCfg, _ := tracedConfig()
	_, tracedHS, _ := newTestServer(t, tracedCfg)
	_, plainHS, c := newTestServer(t, testConfig()) // no Obs: tracing off

	wantBody, status, _ := postSolveTraced(t, tracedHS.URL, solveReq(), map[string]string{"traceparent": fixedTraceparent})
	if status != http.StatusOK {
		t.Fatalf("traced solve: status %d", status)
	}
	gotBody, status, h := postSolveTraced(t, plainHS.URL, solveReq(), map[string]string{"traceparent": fixedTraceparent})
	if status != http.StatusOK {
		t.Fatalf("untraced solve: status %d", status)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("untraced solve body differs from traced body:\n%s\nvs\n%s", gotBody, wantBody)
	}
	if tp := h.Get("traceparent"); tp != "" {
		t.Fatalf("untraced response carries traceparent %q, want none", tp)
	}
	// An incoming X-Request-ID still echoes (correlation costs nothing), but
	// none is minted.
	_, _, h = postSolveTraced(t, plainHS.URL, solveReq(), map[string]string{"X-Request-ID": "still-echoed"})
	if got := h.Get("X-Request-ID"); got != "still-echoed" {
		t.Fatalf("untraced X-Request-ID echo = %q, want still-echoed", got)
	}
	_, _, h = postSolveTraced(t, plainHS.URL, solveReq(), nil)
	if got := h.Get("X-Request-ID"); got != "" {
		t.Fatalf("untraced response minted X-Request-ID %q, want none", got)
	}

	ctx := context.Background()
	for _, fetch := range []func() error{
		func() error { _, err := c.Traces(ctx); return err },
		func() error { _, err := c.Trace(ctx, fixedTraceID); return err },
		func() error { _, err := c.SLO(ctx); return err },
	} {
		err := fetch()
		apiErr, ok := err.(*service.APIError)
		if !ok || apiErr.Err.Status != http.StatusNotFound {
			t.Fatalf("observability endpoint with tracing off = %v, want structured 404", err)
		}
	}
}

// TestSLOBurnAndShedLoad drives healthy solves (zero burn), then fills a
// capacity-1 queue until it sheds with 429 and asserts the burn-rate report
// spends availability budget and the rejected-wait histogram saw the sample
// — the fix that makes shed load visible to SLO burn.
func TestSLOBurnAndShedLoad(t *testing.T) {
	cfg, _ := tracedConfig()
	cfg.QueueSize = 1
	cfg.JobWorkers = 1
	s, hs, c := newTestServer(t, cfg)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, _, err := c.Solve(ctx, solveReq()); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	slo, err := c.SLO(ctx)
	if err != nil {
		t.Fatalf("slo: %v", err)
	}
	solve := slo.Route("/v1/solve")
	if solve == nil {
		t.Fatalf("SLO report missing /v1/solve: %+v", slo)
	}
	if solve.Total < 3 {
		t.Fatalf("/v1/solve SLO total = %d, want >= 3", solve.Total)
	}
	for _, w := range solve.Windows {
		if w.AvailabilityBurn != 0 {
			t.Fatalf("availability burn %.3f in %s after healthy solves, want 0", w.AvailabilityBurn, w.Window)
		}
	}

	// Hold the single executor, fill the one queue slot, then shed.
	gate := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	s.SetTestHookBeforeJob(func() {
		once.Do(func() { close(started) })
		<-gate
	})
	defer close(gate)
	if _, err := c.SubmitJob(ctx, solveReq()); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started
	if _, err := c.SubmitJob(ctx, solveReq()); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	sheds := 0
	for i := 0; i < 3; i++ {
		buf, _ := json.Marshal(solveReq())
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatalf("no 429s from a full capacity-1 queue")
	}

	slo, err = c.SLO(ctx)
	if err != nil {
		t.Fatalf("slo after shed: %v", err)
	}
	jobs := slo.Route("/v1/jobs")
	if jobs == nil {
		t.Fatalf("SLO report missing /v1/jobs: %+v", slo)
	}
	if jobs.Bad < uint64(sheds) {
		t.Fatalf("/v1/jobs bad = %d after %d sheds, want >= %d", jobs.Bad, sheds, sheds)
	}
	if burn := jobs.MaxBurn(); burn <= 0 {
		t.Fatalf("/v1/jobs burn = %.3f after shed load, want > 0", burn)
	}

	// The shed path must leave a wait-histogram sample for dashboards too.
	prom, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(prom, "varpower_queue_rejected_wait_seconds") {
		t.Fatalf("metrics missing varpower_queue_rejected_wait_seconds after 429s")
	}
}

// TestOpenMetricsExemplars asserts a traced solve pins its trace ID into the
// request-latency histogram and the OpenMetrics rendering carries it with
// the mandatory EOF terminator.
func TestOpenMetricsExemplars(t *testing.T) {
	cfg, _ := tracedConfig()
	_, hs, c := newTestServer(t, cfg)
	if _, status, _ := postSolveTraced(t, hs.URL, solveReq(), map[string]string{"traceparent": fixedTraceparent}); status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	om, err := c.Metrics(context.Background(), "openmetrics")
	if err != nil {
		t.Fatalf("metrics openmetrics: %v", err)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics output does not end with # EOF")
	}
	if !strings.Contains(om, `# {trace_id="`+fixedTraceID+`"}`) {
		t.Fatalf("OpenMetrics output has no exemplar for trace %s", fixedTraceID)
	}
	_, err = c.Metrics(context.Background(), "om")
	if err != nil {
		t.Fatalf("metrics om alias: %v", err)
	}
	mURL := hs.URL + "/v1/metrics?format=openmetrics"
	resp, err := http.Get(mURL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("Content-Type = %q, want application/openmetrics-text", ct)
	}
}

// TestPerfettoExport downloads a trace in Chrome trace-event form and checks
// it is loadable: a traceEvents array holding the solve spans plus process
// and thread metadata.
func TestPerfettoExport(t *testing.T) {
	cfg, _ := tracedConfig()
	_, hs, _ := newTestServer(t, cfg)
	if _, status, _ := postSolveTraced(t, hs.URL, solveReq(), map[string]string{"traceparent": fixedTraceparent}); status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	resp, err := http.Get(hs.URL + "/v1/traces/" + fixedTraceID + "?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perfetto export: status %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, fixedTraceID) {
		t.Fatalf("Content-Disposition = %q, want attachment named after the trace", cd)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"process_name", "/v1/solve", "queue.admit", "cache", "solve"} {
		if !names[want] {
			t.Fatalf("perfetto export missing %q event (have %v)", want, names)
		}
	}

	// Unknown formats and unknown IDs answer structured errors.
	resp, err = http.Get(hs.URL + "/v1/traces/" + fixedTraceID + "?format=zipkin")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=zipkin: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/v1/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", resp.StatusCode)
	}
}

// TestJobTraceContinuation submits a job under a fixed traceparent and
// asserts the executed run continues the same trace: the merged trace holds
// the admission entry plus a job.run continuation parented under the
// admission root, with the final-run measure span inside.
func TestJobTraceContinuation(t *testing.T) {
	cfg, _ := tracedConfig()
	_, hs, c := newTestServer(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	buf, _ := json.Marshal(solveReq())
	hreq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", fixedTraceparent)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := c.WaitJob(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}

	entries, err := c.Trace(ctx, fixedTraceID)
	if err != nil {
		t.Fatalf("fetch trace: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("merged entries = %d, want 2 (admission + continuation)", len(entries))
	}
	admission, run := entries[0], entries[1]
	admitRoot := spanByName(admission, "/v1/jobs")
	if admitRoot == nil {
		t.Fatalf("admission entry has no /v1/jobs root: %+v", admission.Spans)
	}
	runRoot := spanByName(run, "job.run")
	if runRoot == nil {
		t.Fatalf("continuation entry has no job.run root: %+v", run.Spans)
	}
	if runRoot.ParentID != admitRoot.SpanID {
		t.Fatalf("continuation parent = %q, want admission root %q", runRoot.ParentID, admitRoot.SpanID)
	}
	if sp := spanByName(run, "measure"); sp == nil || attrVal(sp, "kind") != "final_run" {
		t.Fatalf("continuation missing final_run measure span: %+v", run.Spans)
	}
}

// TestClientRetrySameRequestID pins the retry correlation contract: every
// attempt of one logical request carries the same X-Request-ID, and a 503
// is retried to success.
func TestClientRetrySameRequestID(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-ID"))
		n := len(ids)
		mu.Unlock()
		if n == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer hs.Close()

	c := client.New(hs.URL)
	c.Retries = 2
	c.RetryBackoff = time.Millisecond
	out, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz with one 503: %v", err)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz = %v, want ok after retry", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 2 {
		t.Fatalf("attempts = %d, want 2", len(ids))
	}
	if ids[0] == "" || ids[0] != ids[1] {
		t.Fatalf("X-Request-ID across attempts = %q, %q; want identical non-empty", ids[0], ids[1])
	}
}

// TestLoadgenVerifyObs runs the miniature load test against a traced server
// and asserts the selftest's observability gate passes: SLO fetched, zero
// availability burn, and a retained hot cache-hit trace.
func TestLoadgenVerifyObs(t *testing.T) {
	cfg, _ := tracedConfig()
	_, hs, _ := newTestServer(t, cfg)
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:      hs.URL,
		Concurrency:  4,
		ColdRequests: 2,
		HotRequests:  40,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if err := rep.VerifyObs(); err != nil {
		t.Fatalf("VerifyObs on a healthy traced run: %v", err)
	}
}
