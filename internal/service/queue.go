package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"varpower/internal/obs"
	"varpower/internal/parallel"
	"varpower/internal/telemetry"
)

// Queue telemetry: depth and capacity gauges (the backpressure dashboard
// pair), rejected submissions, and per-state job counters.
var (
	mQueueDepth = telemetry.Default().Gauge("varpower_queue_depth",
		"Jobs waiting in the varpowerd run queue.", nil)
	mQueueCapacity = telemetry.Default().Gauge("varpower_queue_capacity",
		"Capacity of the varpowerd run queue.", nil)
	mQueueRejected = telemetry.Default().Counter("varpower_queue_rejected_total",
		"Job submissions rejected with 429 because the queue was full.", nil)
	mJobsDone = telemetry.Default().Counter("varpower_jobs_total",
		"Jobs finished by the varpowerd executors, by terminal state.",
		telemetry.Labels{"state": "done"})
	mJobsFailed = telemetry.Default().Counter("varpower_jobs_total",
		"Jobs finished by the varpowerd executors, by terminal state.",
		telemetry.Labels{"state": "failed"})
	mJobSeconds = telemetry.Default().Histogram("varpower_job_seconds",
		"Wall-clock execution time of varpowerd jobs.", nil, nil)
	// mQueueRejectedWait records the Retry-After estimate handed to each
	// rejected (429) submission. Accepted jobs never wait in-handler — the
	// queue is take-a-slot-or-shed — so this histogram is the only latency
	// signal shed load produces, and what lets SLO burn see it.
	mQueueRejectedWait = telemetry.Default().Histogram("varpower_queue_rejected_wait_seconds",
		"Retry-After estimate (seconds) returned with rejected job submissions.",
		telemetry.ExpBuckets(1, 2, 10), nil)
)

// job is one queued run and its mutable status.
type job struct {
	id  string
	req SolveRequest
	// ref carries the admission request's trace context across the async
	// boundary, so the executor's spans land in the same trace.
	ref obs.Ref

	mu     sync.Mutex
	state  JobState
	result *JobResult
	err    string
}

// status snapshots the job as the API's JobStatus.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state, Request: j.req, Result: j.result, Error: j.err}
}

// setRunning transitions queued → running.
func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

// finish records the terminal state.
func (j *job) finish(res *JobResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
		mJobsFailed.Inc()
		return
	}
	j.state = JobDone
	j.result = res
	mJobsDone.Inc()
}

// ErrQueueFull reports a rejected submission together with the backpressure
// hint the handler turns into a Retry-After header.
type ErrQueueFull struct{ RetryAfter int }

// Error implements error.
func (e ErrQueueFull) Error() string {
	return fmt.Sprintf("service: job queue full, retry after %ds", e.RetryAfter)
}

// ErrDraining reports a submission during graceful shutdown.
var ErrDraining = fmt.Errorf("service: draining, not accepting new jobs")

// jobQueue is the bounded run queue: submissions either take a slot
// immediately or are rejected with a Retry-After estimate — the executors
// never block a submitter, and a full queue sheds load instead of growing an
// unbounded backlog. Execution happens on a fixed pool of workers driven
// through internal/parallel (panic capture, per-task telemetry).
type jobQueue struct {
	ch   chan *job
	run  func(*job) // executes one job; set by the server
	done chan struct{}

	mu       sync.Mutex
	jobs     map[string]*job
	seq      int
	draining bool

	// avgNanos is an EMA of job execution time, feeding the Retry-After
	// estimate. Stored as float64 bits for atomic access.
	avgNanos atomic.Uint64
	workers  int
}

// newJobQueue builds a queue of the given capacity and worker count.
func newJobQueue(capacity, workers int) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	mQueueCapacity.Set(float64(capacity))
	return &jobQueue{
		ch:      make(chan *job, capacity),
		done:    make(chan struct{}),
		jobs:    make(map[string]*job),
		workers: workers,
	}
}

// start launches the executor pool. The workers run as one internal/parallel
// fan-out of `workers` long-lived tasks, each draining the channel until it
// closes — jobs inherit the engine's panic capture and task telemetry, and
// the pool exits exactly when the queue is drained.
func (q *jobQueue) start() {
	go func() {
		defer close(q.done)
		_ = parallel.ForEachCtx(context.Background(), q.workers, q.workers, func(_ context.Context, _ int) error {
			for j := range q.ch {
				mQueueDepth.Set(float64(len(q.ch)))
				j.setRunning()
				start := time.Now()
				q.run(j)
				secs := time.Since(start).Seconds()
				mJobSeconds.Observe(secs)
				q.observeJobTime(secs)
			}
			return nil
		})
	}()
}

// observeJobTime folds one execution time into the EMA.
func (q *jobQueue) observeJobTime(secs float64) {
	const alpha = 0.3
	for {
		old := q.avgNanos.Load()
		prev := math.Float64frombits(old)
		next := secs
		if prev > 0 {
			next = alpha*secs + (1-alpha)*prev
		}
		if q.avgNanos.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfter estimates (in whole seconds, ≥ 1) how long until a queue slot
// frees: the backlog's expected drain time across the worker pool.
func (q *jobQueue) retryAfter() int {
	avg := math.Float64frombits(q.avgNanos.Load())
	if avg <= 0 {
		return 1
	}
	est := math.Ceil(float64(len(q.ch)+1) * avg / float64(q.workers))
	if est < 1 {
		return 1
	}
	if est > 600 {
		return 600
	}
	return int(est)
}

// submit enqueues a run, returning its job handle, ErrDraining during
// shutdown, or ErrQueueFull with the Retry-After hint.
func (q *jobQueue) submit(req SolveRequest, ref obs.Ref) (*job, error) {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	q.seq++
	j := &job{id: fmt.Sprintf("j-%d", q.seq), req: req, ref: ref, state: JobQueued}
	// Reserve the slot while holding the lock so draining and enqueueing
	// cannot interleave around the channel close.
	select {
	case q.ch <- j:
		q.jobs[j.id] = j
	default:
		q.seq-- // rejected submissions do not consume an id
		q.mu.Unlock()
		mQueueRejected.Inc()
		ra := q.retryAfter()
		mQueueRejectedWait.Observe(float64(ra))
		return nil, ErrQueueFull{RetryAfter: ra}
	}
	q.mu.Unlock()
	mQueueDepth.Set(float64(len(q.ch)))
	return j, nil
}

// get looks up a job by id.
func (q *jobQueue) get(id string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// depth returns the number of queued (not yet running) jobs.
func (q *jobQueue) depth() int { return len(q.ch) }

// drain stops intake and waits for queued and in-flight jobs to finish, up
// to ctx's deadline. Safe to call once.
func (q *jobQueue) drain(ctx context.Context) error {
	q.mu.Lock()
	already := q.draining
	q.draining = true
	q.mu.Unlock()
	if !already {
		close(q.ch)
	}
	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}
