// Package service is varpower's served control plane: the paper's framework
// is a once-per-system calibration (the PVT) plus a per-job α-solve
// (Equations 6–7), which is exactly the shape of a service a resource
// manager calls at job-submission time — the RMAP integration the paper's
// Section 7 anticipates. The daemon (cmd/varpowerd) owns cluster state —
// instantiated system presets, their install-time PVTs, calibrated
// per-workload PMTs — and serves it over a dependency-free net/http JSON
// API:
//
//	GET  /healthz        liveness and queue depth
//	GET  /v1/systems     the loaded system presets
//	GET  /v1/pvt/{sys}   a system's Power Variation Table
//	POST /v1/solve       budget solve → per-module allocations, α, time
//	POST /v1/jobs        enqueue a full simulated run (bounded queue)
//	GET  /v1/jobs/{id}   job status / result polling
//	GET  /v1/attrib/{sys} live attribution + drift report for an owned system
//	POST /v1/recalibrate incremental PVT refresh of drifting modules
//	GET  /v1/metrics     the telemetry registry (Prometheus/JSON/CSV/OpenMetrics)
//	GET  /v1/traces      retained request traces (internal/obs ring)
//	GET  /v1/traces/{id} one trace, JSON or ?format=perfetto (Chrome viewer)
//	GET  /v1/slo         per-route SLO burn-rate report
//
// The daemon also closes the continuous-observability loop: every job run on
// an owned system streams into that system's attribution collector
// (internal/attrib), whose drift detector flags modules departing from the
// install-time PVT; POST /v1/recalibrate re-measures only the flagged
// modules (core.RefreshPVT) and splices the result into the live table with
// no restart and no full sweep. Each recalibration bumps the system's PVT
// generation, which prefixes the solve and PMT cache keys — so stale cached
// allocations are structurally unreachable the moment the table changes.
//
// The hot path gets production treatment: solve responses are cached as
// rendered bytes under a content key (system, workload, budget, scheme,
// seed, modules, faults) with singleflight coalescing, so concurrent
// identical solves compute once and identical requests return byte-identical
// bodies; calibrated PMTs are cached one level down so budget sweeps over
// one workload recalibrate nothing; the job queue is bounded and sheds load
// with 429 + Retry-After instead of building unbounded backlog; and
// everything the determinism contract requires still holds — a solve's body
// depends only on its request, never on worker counts, cache state, or
// arrival order.
//
// Request observability rides on internal/obs: when Config.Obs is set, every
// request gets a W3C trace context (adopted from an incoming traceparent or
// freshly minted) whose spans — queue admission, cache lookup, calibration,
// solve, measured run — are retained in a tail-biased ring and served back
// through /v1/traces, while per-route SLO burn rates accumulate behind
// /v1/slo. A nil Config.Obs disables all of it at zero per-request cost, and
// in either mode solve bodies are byte-identical: trace context travels only
// in headers and side endpoints, never in a response body.
package service

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"varpower/internal/attrib"
	"varpower/internal/cluster"
	"varpower/internal/core"
	"varpower/internal/faults"
	"varpower/internal/obs"
	"varpower/internal/telemetry"
	"varpower/internal/units"
	"varpower/internal/workload"
)

// HTTP-layer telemetry: request counts by route and status code, latency
// histograms by route, and an in-flight gauge. Routes are the fixed
// patterns, never raw paths, so cardinality is bounded.
var (
	mHTTPInflight = telemetry.Default().Gauge("varpower_http_inflight",
		"HTTP requests currently being served.", nil)
)

// httpLatencyBuckets spans sub-millisecond cache hits to multi-second cold
// calibrations.
var httpLatencyBuckets = telemetry.ExpBuckets(100e-6, 2.51, 16)

// Config parameterises a Server.
type Config struct {
	// Systems lists preset names to load (see cluster.SpecByName); empty
	// loads all four Table-2 machines.
	Systems []string
	// Modules is how many modules to instantiate per system, clamped to each
	// spec's total; 0 selects 192 — large enough for meaningful population
	// statistics, small enough that startup calibration is fast.
	Modules int
	// Seed is the serving seed: the systems the daemon owns are instantiated
	// and calibrated at this seed, and requests that omit seed use it.
	Seed uint64
	// Workers bounds each framework's per-module fan-out (0 = GOMAXPROCS).
	Workers int
	// QueueSize bounds the job queue (default 64).
	QueueSize int
	// JobWorkers is the executor pool width (default 2).
	JobWorkers int
	// CacheSize bounds each cache's retained entries (default 4096).
	CacheSize int
	// FaultHorizon is the virtual-seconds horizon for named fault levels
	// (default 10, matching the resilience experiment).
	FaultHorizon float64
	// Faults, when non-nil, is a fault plan installed on every owned system
	// at startup — the daemon then serves a degrading cluster (cap-drift,
	// failing sensors) instead of a pristine one, which is what the
	// drift-detection loop exists for. Install-time PVT calibration runs
	// under the plan too, exactly as it would on real drifting hardware.
	Faults *faults.Plan
	// Obs enables request-scoped tracing, structured request logging and SLO
	// monitoring (nil disables all three at zero per-request cost).
	Obs *obs.Observer
	// StateDir, when set, enables durable snapshots: each owned system's
	// calibrated state (PVT, generation, attribution, current-generation
	// cache rows) is persisted to <StateDir>/<system>.snap — written on
	// Drain, on POST /v1/snapshot, and every SnapshotInterval — and restored
	// warm at the next boot, skipping recalibration.
	StateDir string
	// SnapshotInterval is the periodic snapshot cadence (0 disables the
	// loop; Drain and /v1/snapshot still write).
	SnapshotInterval time.Duration
	// LazySystems lists presets registered but not built at startup: the
	// first request addressing one builds it on demand, preferring a warm
	// restore from StateDir. This is the failover posture — a secondary
	// shard lists its primary's systems lazily, paying nothing until the
	// router actually fails over, then adopting the primary's latest
	// snapshot.
	LazySystems []string
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	// An explicit lazy-only config is a spare shard, not "serve everything".
	if len(c.Systems) == 0 && len(c.LazySystems) == 0 {
		for _, s := range cluster.Presets() {
			c.Systems = append(c.Systems, s.Name)
		}
		// The hybrid CPU+GPU presets ride along lazily: servable on first
		// request (their GPU population makes eager calibration pricier),
		// free until then.
		for _, s := range cluster.HybridPresets() {
			c.LazySystems = append(c.LazySystems, s.Name)
		}
	}
	if c.Modules == 0 {
		c.Modules = 192
	}
	if c.Seed == 0 {
		c.Seed = 0x5c15
	}
	if c.QueueSize == 0 {
		c.QueueSize = 64
	}
	if c.JobWorkers == 0 {
		c.JobWorkers = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.FaultHorizon == 0 {
		c.FaultHorizon = 10
	}
	return c
}

// baseSystem is one owned preset: the instantiated machine and its
// install-time framework (PVT included). The base system is never run
// directly — solves and jobs clone it so concurrent requests cannot clobber
// each other's RAPL limits and pinned frequencies.
type baseSystem struct {
	spec cluster.Spec

	// mu guards fw, pool and gen. Recalibration is the only writer: it swaps
	// in a framework with the refreshed PVT, replaces the replica pool (old
	// replicas carry the old table) and bumps the generation. Readers take
	// snapshots through the accessors below and finish against a consistent
	// (fw, pool) pair.
	mu   sync.RWMutex
	fw   *core.Framework
	// pool recycles replicas of fw for the hot solve path (serving seed,
	// healthy, loaded size); replicas return reset to fresh-clone state.
	pool *core.ReplicaPool
	// gen counts PVT generations (0 = install-time). It prefixes the solve
	// and PMT cache keys, so a recalibration invalidates every cached answer
	// derived from the previous table without touching the caches.
	gen uint64

	// recalMu serialises recalibrations (each is a real re-measurement).
	recalMu sync.Mutex

	// gpvt is the GPU device class's install-time table (nil for CPU-only
	// presets). It is written once at build/restore time and read-only
	// thereafter: the recalibration path covers CPU modules only, so no
	// lock is needed.
	gpvt *core.GPUPVT

	// restored marks a system whose boot state came from a snapshot rather
	// than a fresh calibration sweep.
	restored bool

	// collector is the system's continuous attribution + drift-detection
	// engine; every job run on the owned cluster state streams into it.
	collector *attrib.Collector
}

// snapshot returns a consistent (framework, pool, generation) triple.
func (b *baseSystem) snapshot() (*core.Framework, *core.ReplicaPool, uint64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.fw, b.pool, b.gen
}

// framework returns the current live framework.
func (b *baseSystem) framework() *core.Framework {
	fw, _, _ := b.snapshot()
	return fw
}

// generation returns the current PVT generation.
func (b *baseSystem) generation() uint64 {
	_, _, gen := b.snapshot()
	return gen
}

// calibration is a PMT-cache value: the calibrated table plus the PVT
// quarantine list it was built against.
type calibration struct {
	pmt         *core.PMT
	quarantined []int
}

// Server is the control plane's state and handler set.
type Server struct {
	cfg   Config
	names []string // canonical preset names, load order (eager only)

	// baseMu guards base: lazy systems are built (and inserted) on first
	// request, so the map mutates at runtime.
	baseMu sync.RWMutex
	base   map[string]*baseSystem // key: lower-cased preset name

	// lazyMu serialises on-demand builds; lazy maps lower-cased name →
	// spec for registered-but-unbuilt systems.
	lazyMu    sync.Mutex
	lazy      map[string]cluster.Spec
	lazyNames []string

	// restores records each eager system's boot outcome (warm/cold/...).
	restores []RestoreOutcome

	solves *flightCache[[]byte]
	pmts   *flightCache[calibration]
	queue  *jobQueue

	mux   *http.ServeMux
	start time.Time

	// snapStop, when non-nil, closes to stop the periodic snapshot loop.
	snapStop chan struct{}
	snapOnce sync.Once

	// testHookBeforeJob, when set, runs at the start of every job execution;
	// the queue tests use it to hold executors while they fill the queue.
	testHookBeforeJob func()
}

// New instantiates the server's cluster state: every configured preset is
// built at the serving seed and PVT-calibrated (the install-time step).
// This is the slow part of startup — milliseconds per 192-module system —
// and never recurs while serving. With Config.StateDir set, a system whose
// snapshot is present, intact and configuration-compatible comes up warm
// instead: the persisted PVT is adopted, the generation continues where it
// left off, and the calibration sweep is skipped entirely.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		base:   make(map[string]*baseSystem),
		lazy:   make(map[string]cluster.Spec),
		solves: newFlightCache[[]byte]("solve", cfg.CacheSize),
		pmts:   newFlightCache[calibration]("pmt", cfg.CacheSize),
		queue:  newJobQueue(cfg.QueueSize, cfg.JobWorkers),
		start:  time.Now(),
	}
	for _, name := range cfg.Systems {
		spec, err := cluster.SpecByName(name)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(spec.Name)
		if _, dup := s.base[key]; dup {
			continue
		}
		b, outcome, err := s.buildSystem(spec)
		if err != nil {
			return nil, err
		}
		s.base[key] = b
		s.names = append(s.names, spec.Name)
		s.restores = append(s.restores, outcome)
	}
	for _, name := range cfg.LazySystems {
		spec, err := cluster.SpecByName(name)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(spec.Name)
		if _, eager := s.base[key]; eager {
			continue
		}
		if _, dup := s.lazy[key]; dup {
			continue
		}
		s.lazy[key] = spec
		s.lazyNames = append(s.lazyNames, spec.Name)
	}
	s.queue.run = s.runJob
	s.queue.start()
	s.mux = s.routes()
	if cfg.StateDir != "" && cfg.SnapshotInterval > 0 {
		s.snapStop = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotInterval, s.snapStop)
	}
	return s, nil
}

// buildSystem brings one preset up: warm from a snapshot when possible,
// cold (instantiate + PVT-calibrate) otherwise.
func (s *Server) buildSystem(spec cluster.Spec) (*baseSystem, RestoreOutcome, error) {
	n := s.cfg.Modules
	if total := spec.TotalModules(); n > total {
		n = total
	}
	if s.cfg.StateDir != "" {
		if b, outcome := s.restoreSystem(spec, n); b != nil {
			restoresTotal(outcome.Outcome).Inc()
			return b, outcome, nil
		} else if outcome.Outcome != "cold" {
			// A rejected snapshot falls through to the cold build below, but
			// the rejection itself is the reportable outcome.
			restoresTotal(outcome.Outcome).Inc()
			b, _, err := s.coldBuild(spec, n)
			return b, outcome, err
		}
		restoresTotal("cold").Inc()
	}
	return s.coldBuild(spec, n)
}

// coldBuild is the from-scratch path: instantiate the cluster at the
// serving seed, install the boot fault plan, run install-time calibration.
func (s *Server) coldBuild(spec cluster.Spec, n int) (*baseSystem, RestoreOutcome, error) {
	sys, err := cluster.New(spec, n, s.cfg.Seed)
	if err != nil {
		return nil, RestoreOutcome{}, err
	}
	if s.cfg.Faults != nil {
		inj, err := faults.NewInjector(s.cfg.Faults)
		if err != nil {
			return nil, RestoreOutcome{}, fmt.Errorf("service: fault plan for %s: %w", spec.Name, err)
		}
		sys.InstallFaults(inj)
	}
	fw, err := core.NewFrameworkWorkers(sys, nil, s.cfg.Workers)
	if err != nil {
		return nil, RestoreOutcome{}, fmt.Errorf("service: calibrate %s: %w", spec.Name, err)
	}
	gpvt, err := s.gpuTableFor(sys)
	if err != nil {
		return nil, RestoreOutcome{}, err
	}
	return &baseSystem{
		spec: spec, fw: fw, pool: core.NewReplicaPool(fw), gpvt: gpvt,
		collector: attrib.New(attrib.Config{}),
	}, RestoreOutcome{System: spec.Name, Outcome: "cold", Note: "calibrated"}, nil
}

// gpuTableFor runs the GPU device class's install-time calibration sweep
// (nil for CPU-only systems). The sweep is deterministic in (spec, seed),
// so restored systems regenerate it instead of persisting it.
func (s *Server) gpuTableFor(sys *cluster.System) (*core.GPUPVT, error) {
	if !sys.Spec.Hybrid() {
		return nil, nil
	}
	gpvt, err := core.GenerateGPUPVT(context.Background(), sys, s.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("service: GPU calibrate %s: %w", sys.Spec.Name, err)
	}
	return gpvt, nil
}

// builtSystem looks up an already-built system (no lazy materialisation).
func (s *Server) builtSystem(name string) (*baseSystem, bool) {
	s.baseMu.RLock()
	defer s.baseMu.RUnlock()
	b, ok := s.base[strings.ToLower(strings.TrimSpace(name))]
	return b, ok
}

// builtNames lists every built system's canonical name: the eager set plus
// any lazy systems materialised so far, in load/build order.
func (s *Server) builtNames() []string {
	s.baseMu.RLock()
	defer s.baseMu.RUnlock()
	out := make([]string, 0, len(s.names)+len(s.lazyNames))
	out = append(out, s.names...)
	for _, name := range s.lazyNames {
		if _, built := s.base[strings.ToLower(name)]; built {
			out = append(out, name)
		}
	}
	return out
}

// servableNames lists every name the server will answer for (built or
// lazy), for error messages.
func (s *Server) servableNames() []string {
	out := append([]string{}, s.names...)
	return append(out, s.lazyNames...)
}

// baseFor resolves a request's system: a built system directly, a
// registered lazy one by materialising it on first use — warm from the
// state directory when the primary left a snapshot there, cold otherwise.
func (s *Server) baseFor(name string) (*baseSystem, bool) {
	if b, ok := s.builtSystem(name); ok {
		return b, true
	}
	// Alias forms ("hybrid", "summit", "vulcan") canonicalise through the
	// preset registry, so the aliases cluster.SpecByName documents work
	// over HTTP too.
	if spec, err := cluster.SpecByName(name); err == nil {
		name = spec.Name
		if b, ok := s.builtSystem(name); ok {
			return b, true
		}
	}
	key := strings.ToLower(strings.TrimSpace(name))
	s.lazyMu.Lock()
	defer s.lazyMu.Unlock()
	// Re-check under the build lock: a concurrent request may have built it.
	if b, ok := s.builtSystem(key); ok {
		return b, true
	}
	spec, ok := s.lazy[key]
	if !ok {
		return nil, false
	}
	b, outcome, err := s.buildSystem(spec)
	if err != nil {
		return nil, false
	}
	s.baseMu.Lock()
	s.base[key] = b
	s.restores = append(s.restores, outcome)
	s.baseMu.Unlock()
	return b, true
}

// Handler returns the daemon's full route set, including the telemetry
// debug subtree (/debug/pprof, /debug/vars).
func (s *Server) Handler() http.Handler { return s.mux }

// SolveCacheStats snapshots the rendered-response cache's counters.
func (s *Server) SolveCacheStats() CacheStats { return s.solves.Stats() }

// PMTCacheStats snapshots the calibration cache's counters.
func (s *Server) PMTCacheStats() CacheStats { return s.pmts.Stats() }

// routes wires the endpoint table.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /v1/systems", s.instrument("/v1/systems", s.handleSystems))
	mux.Handle("GET /v1/pvt/{system}", s.instrument("/v1/pvt", s.handlePVT))
	mux.Handle("POST /v1/solve", s.instrument("/v1/solve", s.handleSolve))
	mux.Handle("POST /v1/jobs", s.instrument("/v1/jobs", s.handleSubmitJob))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/get", s.handleGetJob))
	mux.Handle("GET /v1/attrib/{system}", s.instrument("/v1/attrib", s.handleAttrib))
	mux.Handle("POST /v1/recalibrate", s.instrument("/v1/recalibrate", s.handleRecalibrate))
	mux.Handle("POST /v1/snapshot", s.instrument("/v1/snapshot", s.handleSnapshot))
	mux.Handle("GET /v1/metrics", s.instrument("/v1/metrics", s.handleMetrics))
	mux.Handle("GET /v1/traces", s.instrument("/v1/traces", s.handleTraces))
	mux.Handle("GET /v1/traces/{id}", s.instrument("/v1/traces/get", s.handleTrace))
	mux.Handle("GET /v1/slo", s.instrument("/v1/slo", s.handleSLO))
	mux.Handle("/debug/", telemetry.DebugMux(telemetry.Default(), telemetry.DefaultTracer()))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
	return mux
}

// Observability header keys in Go's canonical MIME form — Header.Get/Set
// with an already-canonical key never allocate, which keeps the disabled
// middleware path at zero observability overhead. HTTP header names are
// case-insensitive, so W3C's lowercase "traceparent" matches fine.
const (
	headerTraceparent = "Traceparent"
	headerRequestID   = "X-Request-Id"
)

// statusRecorder captures the handler's status code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the code.
func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the varpower_http_* metrics for its route
// and, when observability is enabled, the request-tracing middleware: the
// trace context is adopted from the incoming traceparent (or freshly minted)
// and handed to the handler through the request context, the response echoes
// `traceparent` and `X-Request-ID` headers, the finished trace lands in the
// retention ring, and the latency observation carries the trace ID as its
// exemplar. With a nil observer the wrapper reduces to the bare metrics
// path — no context values, no headers beyond an incoming X-Request-ID echo,
// no extra allocations.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	hist := telemetry.Default().Histogram("varpower_http_request_seconds",
		"HTTP request handling latency by route.", httpLatencyBuckets,
		telemetry.Labels{"route": route})
	counter := func(code int) *telemetry.Counter {
		return telemetry.Default().Counter("varpower_http_requests_total",
			"HTTP requests served, by route and status code.",
			telemetry.Labels{"route": route, "code": fmt.Sprint(code)})
	}
	o := s.cfg.Obs
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mHTTPInflight.Add(1)
		defer mHTTPInflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		var rt *obs.RequestTrace
		if o.Enabled() {
			ctx, t := o.StartRequest(r.Context(), obs.Request{
				Method:      r.Method,
				Route:       route,
				Traceparent: r.Header.Get(headerTraceparent),
				RequestID:   r.Header.Get(headerRequestID),
			})
			rt = t
			w.Header().Set(headerTraceparent, rt.Traceparent())
			w.Header().Set(headerRequestID, rt.RequestID())
			r = r.WithContext(ctx)
		} else if reqID := r.Header.Get(headerRequestID); reqID != "" {
			w.Header().Set(headerRequestID, reqID)
		}
		start := time.Now()
		h(rec, r)
		secs := time.Since(start).Seconds()
		if rt != nil {
			hist.ObserveWithExemplar(secs, rt.TraceID().String())
			o.EndRequest(rt, rec.code)
		} else {
			hist.Observe(secs)
		}
		counter(rec.code).Inc()
	})
}

// --- Read endpoints ---------------------------------------------------------

// handleHealthz reports liveness, uptime and queue depth.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime_s":    int64(time.Since(s.start).Seconds()),
		"systems":     s.builtNames(),
		"queue_depth": s.queue.depth(),
	})
}

// systemInfo is one /v1/systems row.
type systemInfo struct {
	Name            string `json:"name"`
	Site            string `json:"site"`
	Arch            string `json:"arch"`
	Measurement     string `json:"measurement"`
	SupportsCapping bool   `json:"supports_capping"`
	ModulesTotal    int    `json:"modules_total"`
	ModulesLoaded   int    `json:"modules_loaded"`
	Quarantined     int    `json:"quarantined"`
	PVTGeneration   uint64 `json:"pvt_generation"`
	// Restored marks a system whose state was adopted from a durable
	// snapshot at boot rather than freshly calibrated.
	Restored bool `json:"restored,omitempty"`
	// GPU fields are present for hybrid presets only.
	GPUArch        string `json:"gpu_arch,omitempty"`
	GPUsLoaded     int    `json:"gpus_loaded,omitempty"`
	GPUQuarantined int    `json:"gpu_quarantined,omitempty"`
}

// handleSystems lists the built presets (lazy systems appear once their
// first request materialises them).
func (s *Server) handleSystems(w http.ResponseWriter, _ *http.Request) {
	names := s.builtNames()
	out := make([]systemInfo, 0, len(names))
	for _, name := range names {
		b, ok := s.builtSystem(name)
		if !ok {
			continue
		}
		fw, _, gen := b.snapshot()
		info := systemInfo{
			Name:            b.spec.Name,
			Site:            b.spec.Site,
			Arch:            b.spec.Arch.Name,
			Measurement:     string(b.spec.Measurement),
			SupportsCapping: b.spec.Measurement.SupportsCapping(),
			ModulesTotal:    b.spec.TotalModules(),
			ModulesLoaded:   fw.Sys.NumModules(),
			Quarantined:     len(fw.PVT.Quarantined),
			PVTGeneration:   gen,
			Restored:        b.restored,
		}
		if b.spec.Hybrid() {
			info.GPUArch = b.spec.GPU.Arch.Name
			info.GPUsLoaded = fw.Sys.NumGPUs()
			if b.gpvt != nil {
				info.GPUQuarantined = len(b.gpvt.Quarantined)
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"systems": out})
}

// handleSnapshot is POST /v1/snapshot: persist every built system's durable
// state now. 503 when the daemon has no state directory — the caller asked
// for a durability guarantee the configuration cannot honour.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.StateDir == "" {
		writeError(w, http.StatusServiceUnavailable, CodeInternal,
			"snapshots disabled: no state directory configured (run with -state-dir)")
		return
	}
	metas, err := s.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshots": metas})
}

// handlePVT serves a loaded system's Power Variation Table.
func (s *Server) handlePVT(w http.ResponseWriter, r *http.Request) {
	b, ok := s.baseFor(r.PathValue("system"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"system %q not loaded (have %v)", r.PathValue("system"), s.servableNames())
		return
	}
	writeJSON(w, http.StatusOK, b.framework().PVT)
}

// handleMetrics re-exports the telemetry registry; ?format=json|csv|prom
// overrides the default Prometheus text exposition, and ?format=openmetrics
// selects the OpenMetrics form with trace-ID exemplars on histogram buckets.
// SLO burn-rate gauges are refreshed on every scrape (pull model).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := telemetry.FormatPrometheus
	ct := "text/plain; version=0.0.4; charset=utf-8"
	switch strings.ToLower(r.URL.Query().Get("format")) {
	case "", "prom", "prometheus":
	case "json":
		format, ct = telemetry.FormatJSON, "application/json; charset=utf-8"
	case "csv":
		format, ct = telemetry.FormatCSV, "text/csv; charset=utf-8"
	case "openmetrics", "om":
		format, ct = telemetry.FormatOpenMetrics, "application/openmetrics-text; version=1.0.0; charset=utf-8"
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"unknown metrics format %q (want prom, json, csv or openmetrics)", r.URL.Query().Get("format"))
		return
	}
	s.cfg.Obs.PublishSLO()
	w.Header().Set("Content-Type", ct)
	_ = telemetry.Write(w, telemetry.Default(), format)
}

// --- Solve ------------------------------------------------------------------

// canonical validates and canonicalises a request against the loaded state:
// names take their canonical forms, defaults are filled in, and the returned
// request is the cache-key identity — two requests meaning the same solve
// canonicalise identically.
func (s *Server) canonical(req SolveRequest) (SolveRequest, *baseSystem, *workload.Benchmark, core.Scheme, units.Watts, error) {
	b, ok := s.baseFor(req.System)
	if !ok {
		return req, nil, nil, 0, 0, fmt.Errorf("system %q not loaded (have %v)", req.System, s.servableNames())
	}
	req.System = b.spec.Name
	bench, err := workload.ByName(req.Workload)
	if err != nil {
		return req, nil, nil, 0, 0, err
	}
	req.Workload = bench.Name
	scheme, err := core.SchemeByName(req.Scheme)
	if err != nil {
		return req, nil, nil, 0, 0, err
	}
	req.Scheme = scheme.String()
	budget, err := req.budget()
	if err != nil {
		return req, nil, nil, 0, 0, err
	}
	req.Budget = ""
	req.BudgetWatts = float64(budget)
	if req.Seed == 0 {
		req.Seed = s.cfg.Seed
	}
	loaded := b.framework().Sys.NumModules()
	if req.Modules == 0 {
		req.Modules = loaded
	}
	if req.Modules < 1 || req.Modules > b.spec.TotalModules() {
		return req, nil, nil, 0, 0, fmt.Errorf("modules %d outside [1, %d]", req.Modules, b.spec.TotalModules())
	}
	if req.Faults != "" {
		level, err := faults.LevelByName(req.Faults, s.cfg.FaultHorizon)
		if err != nil {
			return req, nil, nil, 0, 0, err
		}
		if level.Name == "none" {
			req.Faults = "" // byte-identical to not asking for faults
		} else {
			req.Faults = level.Name
		}
	}
	if b.spec.Hybrid() {
		if req.Splitter == "" {
			req.Splitter = core.SplitGreedy.String()
		}
		splitter, err := core.SplitterByName(req.Splitter)
		if err != nil {
			return req, nil, nil, 0, 0, err
		}
		req.Splitter = splitter.String()
	} else if req.Splitter != "" {
		return req, nil, nil, 0, 0, fmt.Errorf("splitter %q set but %s has no GPU device class", req.Splitter, b.spec.Name)
	}
	return req, b, bench, scheme, budget, nil
}

// solveKey renders the canonical request as the content cache key. The
// system's PVT generation leads: a recalibration bumps it, so every answer
// computed against the previous table becomes unreachable at once.
func solveKey(gen uint64, req SolveRequest) string {
	return fmt.Sprintf("g%d|%s|%s|%s|%.6f|%d|%d|%s|%s",
		gen, req.System, req.Workload, req.Scheme, req.BudgetWatts, req.Modules, req.Seed, req.Faults, req.Splitter)
}

// pmtKey is the calibration cache key: everything but the budget, which the
// PMT does not depend on — that is what makes budget sweeps cheap. Like
// solveKey it is generation-prefixed, since calibration divides by the PVT.
func pmtKey(gen uint64, req SolveRequest) string {
	return fmt.Sprintf("g%d|%s|%s|%s|%d|%d|%s",
		gen, req.System, req.Workload, req.Scheme, req.Modules, req.Seed, req.Faults)
}

// frameworkFor materialises the system a canonical request solves against.
// The serving-seed, healthy, full-size case borrows a pooled replica of the
// owned base system (release returns it reset for the next request); any
// other seed, size or fault level builds and calibrates a fresh replica —
// the genuinely cold path, whose release is a no-op. Callers must invoke
// release exactly once, after their last use of the framework.
func (s *Server) frameworkFor(req SolveRequest, b *baseSystem) (fw *core.Framework, release func(), err error) {
	base, pool, _ := b.snapshot()
	if req.Seed == s.cfg.Seed && req.Faults == "" && req.Modules <= base.Sys.NumModules() {
		fw := pool.Get()
		return fw, func() { pool.Put(fw) }, nil
	}
	n := req.Modules
	if loaded := base.Sys.NumModules(); n < loaded {
		n = loaded
	}
	sys, err := cluster.New(b.spec, n, req.Seed)
	if err != nil {
		return nil, nil, err
	}
	if req.Faults != "" {
		level, err := faults.LevelByName(req.Faults, s.cfg.FaultHorizon)
		if err != nil {
			return nil, nil, err
		}
		plan, err := faults.Generate(req.Seed, level.Spec, n)
		if err != nil {
			return nil, nil, err
		}
		sys.InstallFaults(faults.MustInjector(plan))
	}
	fw, err = core.NewFrameworkWorkers(sys, nil, s.cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	return fw, func() {}, nil
}

// calibrate builds (or fetches) the calibrated PMT for a canonical request,
// keyed under the given PVT generation. The calibration span carries the PMT
// cache disposition; the measured sweep inside a miss gets its own span.
func (s *Server) calibrate(ctx context.Context, gen uint64, req SolveRequest, b *baseSystem, bench *workload.Benchmark, scheme core.Scheme) (calibration, error) {
	ctx, sp := obs.StartSpan(ctx, "calibrate")
	defer sp.End()
	cal, err, disp := s.pmts.Do(pmtKey(gen, req), func() (calibration, error) {
		fw, release, err := s.frameworkFor(req, b)
		if err != nil {
			return calibration{}, err
		}
		defer release()
		ids, err := fw.Sys.AllocateFirst(req.Modules)
		if err != nil {
			return calibration{}, err
		}
		_, msp := obs.StartSpan(ctx, "measure")
		msp.SetAttr("kind", "pmt_sweep")
		msp.SetInt("modules", req.Modules)
		pmt, err := fw.BuildPMT(bench, ids, scheme)
		msp.Fail(err)
		msp.End()
		if err != nil {
			return calibration{}, err
		}
		var quarantined []int
		for _, id := range fw.PVT.Quarantined {
			if id < req.Modules {
				quarantined = append(quarantined, id)
			}
		}
		return calibration{pmt: pmt, quarantined: quarantined}, nil
	})
	sp.SetAttr("cache", string(disp))
	sp.Fail(err)
	return cal, err
}

// solveBody computes the rendered response for a canonical request — the
// cache-miss path. Hybrid systems take the hierarchical route.
func (s *Server) solveBody(ctx context.Context, gen uint64, req SolveRequest, b *baseSystem, bench *workload.Benchmark, scheme core.Scheme, budget units.Watts) ([]byte, error) {
	if b.spec.Hybrid() {
		return s.solveHeteroBody(ctx, req, b, bench, scheme, budget)
	}
	cal, err := s.calibrate(ctx, gen, req, b, bench, scheme)
	if err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "solve")
	sp.SetAttr("scheme", req.Scheme)
	alloc, err := core.Solve(cal.pmt, b.spec.Arch, budget)
	sp.Fail(err)
	sp.End()
	if err != nil {
		return nil, err
	}
	resp := SolveResponse{
		System:      req.System,
		Workload:    req.Workload,
		Scheme:      req.Scheme,
		BudgetWatts: req.BudgetWatts,
		Modules:     req.Modules,
		Seed:        req.Seed,
		Faults:      req.Faults,
		Alpha:       alloc.Alpha,
		FreqHz:      float64(alloc.Freq),
		Feasible:    alloc.Feasible,
		Clamped:     alloc.Clamped,
		Constrained: alloc.Constrained,

		PredictedPowerW: float64(alloc.TotalPredicted()),
		PredictedTimeS:  float64(core.PredictTime(bench, b.spec.Arch, alloc, scheme)),
		Quarantined:     cal.quarantined,
		Allocations:     make([]ModuleAllocation, len(alloc.Entries)),
	}
	for i, e := range alloc.Entries {
		resp.Allocations[i] = ModuleAllocation{
			Module:  e.ModuleID,
			PModule: float64(e.Pmodule),
			PCPU:    float64(e.Pcpu),
			PDram:   float64(e.Pdram),
		}
	}
	return marshalBody(resp)
}

// solveHeteroBody is the hybrid system's cache-miss path: the machine
// budget is split across the CPU and GPU device classes by the request's
// splitter, then each class runs its own α-solve. Both class models are
// built per request (the hetero pipeline needs them together, so the
// CPU-only PMT cache does not apply); the solve cache above still absorbs
// repeats.
func (s *Server) solveHeteroBody(ctx context.Context, req SolveRequest, b *baseSystem, bench *workload.Benchmark, scheme core.Scheme, budget units.Watts) ([]byte, error) {
	splitter, err := core.SplitterByName(req.Splitter)
	if err != nil {
		return nil, err
	}
	fw, release, err := s.frameworkFor(req, b)
	if err != nil {
		return nil, err
	}
	defer release()
	gpvt := b.gpvt
	if gpvt == nil || req.Seed != s.cfg.Seed || req.Faults != "" ||
		req.Modules > b.framework().Sys.NumModules() {
		// Custom seed, fault level or size: the owned table does not
		// describe this replica's devices — run the install-time sweep on
		// it (pooled replicas are clones of the base system and keep the
		// owned table).
		gpvt, err = core.GenerateGPUPVT(ctx, fw.Sys, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
	}
	hf := &core.HeteroFramework{Framework: fw, GPVT: gpvt}
	ids, err := fw.Sys.AllocateFirst(req.Modules)
	if err != nil {
		return nil, err
	}
	devs := hf.AllDevices()
	_, msp := obs.StartSpan(ctx, "measure")
	msp.SetAttr("kind", "hetero_solve")
	msp.SetInt("modules", req.Modules)
	msp.SetInt("devices", len(devs))
	alloc, _, _, err := hf.SolveHetero(bench, ids, devs, budget, scheme, splitter)
	msp.Fail(err)
	msp.End()
	if err != nil {
		return nil, err
	}
	var quarantined []int
	for _, id := range fw.PVT.Quarantined {
		if id < req.Modules {
			quarantined = append(quarantined, id)
		}
	}
	resp := SolveResponse{
		System:      req.System,
		Workload:    req.Workload,
		Scheme:      req.Scheme,
		BudgetWatts: req.BudgetWatts,
		Modules:     req.Modules,
		Seed:        req.Seed,
		Faults:      req.Faults,
		Alpha:       alloc.CPU.Alpha,
		FreqHz:      float64(alloc.CPU.Freq),
		Feasible:    alloc.CPU.Feasible && alloc.GPU.Feasible,
		Clamped:     alloc.CPU.Clamped || alloc.GPU.Clamped,
		Constrained: alloc.CPU.Constrained || alloc.GPU.Constrained,

		PredictedPowerW: float64(alloc.CPU.TotalPredicted() + alloc.GPU.TotalPredicted()),
		PredictedTimeS:  float64(alloc.PredictedTime),
		Quarantined:     quarantined,
		Allocations:     make([]ModuleAllocation, len(alloc.CPU.Entries)),

		Splitter:       req.Splitter,
		CPUBudgetW:     float64(alloc.CPUBudget),
		GPUBudgetW:     float64(alloc.GPUBudget),
		GPUAlpha:       alloc.GPU.Alpha,
		GPUClockHz:     float64(alloc.GPU.Clock),
		GPUQuarantined: gpvt.Quarantined,
		GPUAllocations: make([]GPUAllocation, len(alloc.GPU.Entries)),
	}
	for i, e := range alloc.CPU.Entries {
		resp.Allocations[i] = ModuleAllocation{
			Module:  e.ModuleID,
			PModule: float64(e.Pmodule),
			PCPU:    float64(e.Pcpu),
			PDram:   float64(e.Pdram),
		}
	}
	for i, e := range alloc.GPU.Entries {
		resp.GPUAllocations[i] = GPUAllocation{Device: e.DeviceID, PowerW: float64(e.Power)}
	}
	return marshalBody(resp)
}

// handleSolve is POST /v1/solve: decode, canonicalise, and answer from the
// content-keyed cache (computing under singleflight on a miss). The cache
// disposition travels in the X-Varpower-Cache header so the body stays
// byte-identical across hit, miss and coalesced answers.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	obs.FromContext(ctx).SetTenant(req.Tenant)
	req, b, bench, scheme, budget, err := s.canonical(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	// The generation is read once, before the cache lookup: a recalibration
	// racing this request either lands before (we serve the new table) or
	// after (we serve a last coherent answer from the old one) — never a mix.
	gen := b.generation()
	// Admission span: the solve path has no run queue, but recording depth
	// at admission keeps solve traces comparable with job traces.
	_, qsp := obs.StartSpan(ctx, "queue.admit")
	qsp.SetInt("queue_depth", s.queue.depth())
	qsp.End()
	cctx, csp := obs.StartSpan(ctx, "cache")
	csp.SetInt("generation", int(gen))
	csp.SetAttr("scheme", req.Scheme)
	body, err, disp := s.solves.Do(solveKey(gen, req), func() ([]byte, error) {
		return s.solveBody(cctx, gen, req, b, bench, scheme, budget)
	})
	csp.SetAttr("cache", string(disp))
	csp.Fail(err)
	csp.End()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "solve: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Varpower-Cache", string(disp))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// --- Jobs -------------------------------------------------------------------

// handleSubmitJob is POST /v1/jobs: validate like a solve, then enqueue the
// full simulated run. A full queue answers 429 with a Retry-After estimate;
// a draining server answers 503.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	rt := obs.FromContext(r.Context())
	rt.SetTenant(req.Tenant)
	req, _, _, _, _, err := s.canonical(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	_, qsp := obs.StartSpan(r.Context(), "queue.admit")
	qsp.SetInt("queue_depth", s.queue.depth())
	j, err := s.queue.submit(req, rt.Ref())
	qsp.Fail(err)
	switch e := err.(type) {
	case nil:
		qsp.End()
	case ErrQueueFull:
		qsp.SetInt("retry_after_s", e.RetryAfter)
		qsp.End()
		w.Header().Set("Retry-After", fmt.Sprint(e.RetryAfter))
		writeError(w, http.StatusTooManyRequests, CodeQueueFull,
			"job queue full (%d queued), retry after %ds", s.queue.depth(), e.RetryAfter)
		return
	default:
		qsp.End()
		if err == ErrDraining {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleGetJob is GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// --- Attribution & recalibration --------------------------------------------

// handleAttrib is GET /v1/attrib/{system}: a deterministic snapshot of the
// system's attribution collector — the per-job energy ledger and the
// per-module drift table, with the currently flagged modules.
func (s *Server) handleAttrib(w http.ResponseWriter, r *http.Request) {
	b, ok := s.baseFor(r.PathValue("system"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"system %q not loaded (have %v)", r.PathValue("system"), s.servableNames())
		return
	}
	writeJSON(w, http.StatusOK, AttribResponse{
		System:     b.spec.Name,
		Generation: b.generation(),
		Report:     b.collector.Snapshot(),
	})
}

// handleRecalibrate is POST /v1/recalibrate: incremental PVT refresh. The
// module list defaults to whatever the drift detector currently flags; an
// explicit list lets an operator recalibrate on external evidence. Refusing
// an empty refresh (400) keeps the endpoint honest — a healthy system has
// nothing to splice.
func (s *Server) handleRecalibrate(w http.ResponseWriter, r *http.Request) {
	var req RecalibrateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	b, ok := s.baseFor(req.System)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"system %q not loaded (have %v)", req.System, s.servableNames())
		return
	}
	modules := req.Modules
	if len(modules) == 0 {
		modules = b.collector.Snapshot().Flagged
	}
	if len(modules) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"nothing to recalibrate: no modules listed and the drift detector flags none")
		return
	}
	rep, gen, err := s.recalibrate(b, modules)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "recalibrate: %v", err)
		return
	}
	// The refreshed modules' drift windows restart empty: the detector
	// re-judges the spliced entries on post-refresh evidence only.
	b.collector.Reset(modules)
	resp := RecalibrateResponse{
		System:     b.spec.Name,
		Generation: gen,
		Report:     rep,
	}
	for _, m := range rep.Modules {
		resp.Modules = append(resp.Modules, m.Module)
	}
	writeJSON(w, http.StatusOK, resp)
}

// recalibrate re-measures the given modules against the live PVT and swaps
// the refreshed table in. The probe runs on a pooled replica — it carries
// the base system's fault injector, so the re-measurement observes the same
// drifted hardware the jobs ran on — and the swap replaces the framework
// and replica pool together under the write lock, bumping the generation.
func (s *Server) recalibrate(b *baseSystem, modules []int) (*core.RefreshReport, uint64, error) {
	b.recalMu.Lock()
	defer b.recalMu.Unlock()
	fw, pool, _ := b.snapshot()
	probe := pool.Get()
	newPVT, rep, err := core.RefreshPVT(probe.Sys, fw.PVT, modules, s.cfg.Workers)
	pool.Put(probe)
	if err != nil {
		return nil, 0, err
	}
	next := &core.Framework{Sys: fw.Sys, PVT: newPVT, Workers: fw.Workers}
	b.mu.Lock()
	b.fw = next
	b.pool = core.NewReplicaPool(next)
	b.gen++
	gen := b.gen
	b.mu.Unlock()
	return rep, gen, nil
}

// runJob executes one dequeued job: materialise the system, run the full
// pipeline (calibration, solve, enforced final run), record the measured
// result. Requests were canonicalised at submission, so failures here are
// genuine run failures (e.g. an infeasible budget), not validation gaps.
func (s *Server) runJob(j *job) {
	if s.testHookBeforeJob != nil {
		s.testHookBeforeJob()
	}
	req := j.req
	b, _ := s.baseFor(req.System) // canonicalised at submission: present
	// The executor continues the admission request's trace: its spans join
	// the same trace ID, parented under the admission root, so a merged
	// /v1/traces/{id} view reads as one tree across the async boundary.
	ctx, jrt := s.cfg.Obs.Continue(context.Background(), j.ref, "job.run")
	jrt.Root().SetAttr("job_id", j.id)
	res, err := func() (*JobResult, error) {
		bench, err := workload.ByName(req.Workload)
		if err != nil {
			return nil, err
		}
		scheme, err := core.SchemeByName(req.Scheme)
		if err != nil {
			return nil, err
		}
		fw, release, err := s.frameworkFor(req, b)
		if err != nil {
			return nil, err
		}
		defer release()
		if req.Seed == s.cfg.Seed && req.Faults == "" {
			// A run on the owned cluster state streams into the system's
			// attribution collector (ReplicaPool.Put detaches the hook).
			// Foreign seeds and ad-hoc fault levels are transient replicas —
			// attributing them would pollute the fleet's drift evidence.
			fw.Attrib = b.collector
			fw.Tenant = "jobs"
			if req.Tenant != "" {
				fw.Tenant = req.Tenant
			}
			fw.JobID = req.Workload
		}
		ids, err := fw.Sys.AllocateFirst(req.Modules)
		if err != nil {
			return nil, err
		}
		_, msp := obs.StartSpan(ctx, "measure")
		msp.SetAttr("kind", "final_run")
		msp.SetAttr("workload", req.Workload)
		run, err := fw.Run(bench, ids, units.Watts(req.BudgetWatts), scheme)
		msp.Fail(err)
		if err != nil {
			msp.End()
			return nil, err
		}
		msp.SetAttr("elapsed_s", fmt.Sprintf("%.3f", float64(run.Result.Elapsed)))
		if run.Result.Degraded() {
			msp.SetAttr("degraded", "true")
		}
		msp.End()
		out := &JobResult{
			Alpha:     run.Alloc.Alpha,
			FreqHz:    float64(run.Alloc.Freq),
			ElapsedS:  float64(run.Result.Elapsed),
			AvgPowerW: float64(run.Result.AvgTotalPower),
			EnergyJ:   float64(run.Result.TotalEnergy),
			DeadRanks: run.Result.DeadRanks(),
			Degraded:  run.Result.Degraded(),
		}
		sort.Ints(out.DeadRanks)
		return out, nil
	}()
	j.finish(res, err)
	status := http.StatusOK
	if err != nil {
		jrt.Root().Fail(err)
		status = http.StatusInternalServerError
	}
	s.cfg.Obs.EndRequest(jrt, status)
}

// Drain gracefully shuts the serving state down: stop the periodic
// snapshot loop, stop accepting jobs, finish the queued and in-flight ones
// up to ctx's deadline, then write a final snapshot of every built system
// — the state the next boot restores warm. The HTTP listener's own drain
// is the caller's (telemetry.Server's) concern — the sequence in
// cmd/varpowerd is listener first, then queue, then metrics flush.
func (s *Server) Drain(ctx context.Context) error {
	s.snapOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
		}
	})
	err := s.queue.drain(ctx)
	if s.cfg.StateDir != "" {
		if _, serr := s.Snapshot(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
