// Tests live in package service_test so they can exercise the daemon the
// way real callers do — through internal/service/client over httptest —
// which an in-package test could not (client imports service).
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"varpower/internal/service"
	"varpower/internal/service/client"
	"varpower/internal/service/loadgen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testConfig is the shared small-but-meaningful server shape: one preset,
// 32 modules, a fixed seed — solves complete in milliseconds and the golden
// body stays reviewable.
func testConfig() service.Config {
	return service.Config{
		Systems: []string{"HA8K"},
		Modules: 32,
		Seed:    0x5c15,
	}
}

// newTestServer builds a service.Server plus an httptest front end.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, hs, client.New(hs.URL)
}

// solveReq is the canonical test solve: every test that needs "some valid
// request" uses this one, so cache keys line up across subtests.
func solveReq() service.SolveRequest {
	return service.SolveRequest{
		System:      "HA8K",
		Workload:    "dgemm",
		Scheme:      "vapc",
		BudgetWatts: 2400,
	}
}

func TestHealthzAndSystems(t *testing.T) {
	_, _, c := newTestServer(t, testConfig())
	ctx := context.Background()
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz status = %v, want ok", h["status"])
	}
	sys, err := c.Systems(ctx)
	if err != nil {
		t.Fatalf("systems: %v", err)
	}
	if len(sys) != 1 || sys[0]["name"] != "HA8K" {
		t.Fatalf("systems = %v, want one HA8K entry", sys)
	}
	if got := sys[0]["modules_loaded"]; got != float64(32) {
		t.Fatalf("modules_loaded = %v, want 32", got)
	}
}

func TestPVTEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, testConfig())
	raw, err := c.PVT(context.Background(), "ha8k")
	if err != nil {
		t.Fatalf("pvt: %v", err)
	}
	var pvt struct {
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(raw, &pvt); err != nil {
		t.Fatalf("decode pvt: %v", err)
	}
	if len(pvt.Entries) != 32 {
		t.Fatalf("pvt entries = %d, want 32", len(pvt.Entries))
	}
	if _, err := c.PVT(context.Background(), "nosuch"); err == nil {
		t.Fatalf("pvt for unknown system succeeded, want 404")
	} else if apiErr, ok := err.(*service.APIError); !ok || apiErr.Err.Status != http.StatusNotFound {
		t.Fatalf("pvt error = %v, want structured 404", err)
	}
}

// TestSolveGolden pins the full rendered /v1/solve body for a fixed seed —
// the serving layer's contract that identical requests yield byte-identical
// JSON, in reviewable form.
func TestSolveGolden(t *testing.T) {
	_, hs, _ := newTestServer(t, testConfig())
	body, status, _ := postSolve(t, hs.URL, solveReq())
	if status != http.StatusOK {
		t.Fatalf("solve status = %d, body %s", status, body)
	}
	golden := filepath.Join("testdata", "solve.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("solve body diverges from %s\n got: %s\nwant: %s", golden, body, want)
	}
}

// postSolve issues a raw POST /v1/solve, returning body, status and the
// cache disposition header.
func postSolve(t *testing.T, baseURL string, req service.SolveRequest) ([]byte, int, string) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/solve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), resp.StatusCode, resp.Header.Get("X-Varpower-Cache")
}

// TestSolveCoalescing fires 32 concurrent clients at the same cold solve key
// and asserts exactly one underlying solve ran: one miss, everything else a
// coalesced wait or a post-completion hit, all byte-identical.
func TestSolveCoalescing(t *testing.T) {
	s, hs, _ := newTestServer(t, testConfig())
	const clients = 32
	req := solveReq()
	req.Seed = 7777 // not the serving seed: a genuinely expensive cold solve

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		disps  []string
	)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			body, status, disp := postSolve(t, hs.URL, req)
			if status != http.StatusOK {
				t.Errorf("status = %d, body %s", status, body)
				return
			}
			mu.Lock()
			bodies = append(bodies, body)
			disps = append(disps, disp)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(bodies) != clients {
		t.Fatalf("got %d successful responses, want %d", len(bodies), clients)
	}
	for i, b := range bodies[1:] {
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i+1, b, bodies[0])
		}
	}
	stats := s.SolveCacheStats()
	if stats.Misses != 1 {
		t.Fatalf("solve cache misses = %d, want exactly 1 (dispositions: %v)", stats.Misses, disps)
	}
	if got := stats.Hits + stats.Coalesced; got != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d", got, clients-1)
	}
	if pmt := s.PMTCacheStats(); pmt.Misses != 1 {
		t.Fatalf("pmt cache misses = %d, want exactly 1", pmt.Misses)
	}
}

// TestSolveDeterminismAcrossWorkers runs the same requests against servers
// built at different calibration fan-out widths and requires byte-identical
// bodies — the determinism contract holds through the serving layer. Seed 0
// exercises the base-clone path, seed 12345 the cold-replica path.
func TestSolveDeterminismAcrossWorkers(t *testing.T) {
	seeds := []uint64{0, 12345}
	ref := make(map[uint64][]byte)
	for _, workers := range []int{1, 2, 0} {
		cfg := testConfig()
		cfg.Workers = workers
		_, hs, _ := newTestServer(t, cfg)
		for _, seed := range seeds {
			req := solveReq()
			req.Seed = seed
			body, status, _ := postSolve(t, hs.URL, req)
			if status != http.StatusOK {
				t.Fatalf("workers=%d seed=%d: status %d, body %s", workers, seed, status, body)
			}
			if workers == 1 {
				ref[seed] = body
				continue
			}
			if !bytes.Equal(body, ref[seed]) {
				t.Fatalf("workers=%d seed=%d: solve body differs from workers=1", workers, seed)
			}
		}
	}
}

// TestSolveCacheDispositions checks the X-Varpower-Cache header sequence on
// a quiet server: first request misses, second hits, and both bodies match.
func TestSolveCacheDispositions(t *testing.T) {
	_, hs, _ := newTestServer(t, testConfig())
	b1, _, d1 := postSolve(t, hs.URL, solveReq())
	b2, _, d2 := postSolve(t, hs.URL, solveReq())
	if d1 != string(service.DispMiss) || d2 != string(service.DispHit) {
		t.Fatalf("dispositions = %q, %q; want miss, hit", d1, d2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("hit body differs from miss body")
	}
}

// TestSolveBudgetSweepReusesCalibration asserts the two-level cache split:
// three budgets over one workload calibrate once.
func TestSolveBudgetSweepReusesCalibration(t *testing.T) {
	s, hs, _ := newTestServer(t, testConfig())
	for _, w := range []float64{1500, 2000, 2500} {
		req := solveReq()
		req.BudgetWatts = w
		if body, status, _ := postSolve(t, hs.URL, req); status != http.StatusOK {
			t.Fatalf("budget %v: status %d, body %s", w, status, body)
		}
	}
	if pmt := s.PMTCacheStats(); pmt.Misses != 1 {
		t.Fatalf("pmt cache misses = %d across a budget sweep, want 1", pmt.Misses)
	}
	if sol := s.SolveCacheStats(); sol.Misses != 3 {
		t.Fatalf("solve cache misses = %d, want 3 (distinct budgets)", sol.Misses)
	}
}

// TestSolveBadRequests exercises the structured error body on every
// validation failure class.
func TestSolveBadRequests(t *testing.T) {
	_, hs, _ := newTestServer(t, testConfig())
	cases := []struct {
		name   string
		mutate func(*service.SolveRequest)
	}{
		{"unknown system", func(r *service.SolveRequest) { r.System = "cray" }},
		{"unknown workload", func(r *service.SolveRequest) { r.Workload = "linpack" }},
		{"unknown scheme", func(r *service.SolveRequest) { r.Scheme = "magic" }},
		{"unknown faults", func(r *service.SolveRequest) { r.Faults = "catastrophic" }},
		{"missing budget", func(r *service.SolveRequest) { r.BudgetWatts = 0 }},
		{"both budgets", func(r *service.SolveRequest) { r.Budget = "2kW" }},
		{"modules out of range", func(r *service.SolveRequest) { r.Modules = 99999 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := solveReq()
			tc.mutate(&req)
			body, status, _ := postSolve(t, hs.URL, req)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", status, body)
			}
			var apiErr service.APIError
			if err := json.Unmarshal(body, &apiErr); err != nil {
				t.Fatalf("error body is not structured JSON: %v (%s)", err, body)
			}
			if apiErr.Err.Code != service.CodeBadRequest || apiErr.Err.Status != 400 || apiErr.Err.Message == "" {
				t.Fatalf("error body = %+v, want code %q with a message", apiErr.Err, service.CodeBadRequest)
			}
		})
	}

	// Unknown fields are 400s too (strict decoding).
	resp, err := http.Post(hs.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"system":"HA8K","workloud":"dgemm"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d, want 400", resp.StatusCode)
	}
}

// TestSolveWithFaults solves against a named fault rung and requires the
// response to differ from the healthy solve (the plan actually installed).
func TestSolveWithFaults(t *testing.T) {
	_, hs, _ := newTestServer(t, testConfig())
	healthy, status, _ := postSolve(t, hs.URL, solveReq())
	if status != http.StatusOK {
		t.Fatalf("healthy solve: status %d", status)
	}
	req := solveReq()
	req.Faults = "high"
	faulty, status, _ := postSolve(t, hs.URL, req)
	if status != http.StatusOK {
		t.Fatalf("faulty solve: status %d, body %s", status, faulty)
	}
	if bytes.Equal(healthy, faulty) {
		t.Fatalf("solve with faults=high is byte-identical to healthy solve; injection did not fire")
	}
	var resp service.SolveResponse
	if err := json.Unmarshal(faulty, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Faults != "high" {
		t.Fatalf("response faults = %q, want high", resp.Faults)
	}

	// faults=none canonicalises to the healthy key: byte-identical, cached.
	req.Faults = "none"
	none, status, disp := postSolve(t, hs.URL, req)
	if status != http.StatusOK {
		t.Fatalf("faults=none solve: status %d", status)
	}
	if !bytes.Equal(none, healthy) {
		t.Fatalf("faults=none body differs from healthy body")
	}
	if disp != string(service.DispHit) {
		t.Fatalf("faults=none disposition = %q, want hit (same cache key)", disp)
	}
}

// TestJobLifecycle submits a full simulated run and polls it to completion.
func TestJobLifecycle(t *testing.T) {
	_, _, c := newTestServer(t, testConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.SubmitJob(ctx, solveReq())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" {
		t.Fatalf("submit returned empty id")
	}
	final, err := c.WaitJob(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.JobDone {
		t.Fatalf("job state = %s (error %q), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.ElapsedS <= 0 || final.Result.AvgPowerW <= 0 {
		t.Fatalf("job result = %+v, want positive elapsed and power", final.Result)
	}
	if _, err := c.Job(ctx, "j-404"); err == nil {
		t.Fatalf("lookup of unknown job succeeded, want 404")
	}
}

// TestQueueFullBackpressure fills a capacity-1 queue while the single
// executor is held, then asserts the next submission is shed with 429 and a
// Retry-After hint.
func TestQueueFullBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 1
	cfg.JobWorkers = 1
	s, hs, c := newTestServer(t, cfg)

	gate := make(chan struct{})
	var hookOnce sync.Once
	started := make(chan struct{})
	s.SetTestHookBeforeJob(func() {
		hookOnce.Do(func() { close(started) })
		<-gate
	})
	defer close(gate) // release the executor so Cleanup's Drain finishes

	ctx := context.Background()
	// First job occupies the executor...
	if _, err := c.SubmitJob(ctx, solveReq()); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started
	// ...second fills the queue slot...
	if _, err := c.SubmitJob(ctx, solveReq()); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	// ...third must be rejected with backpressure headers.
	buf, _ := json.Marshal(solveReq())
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	var apiErr service.APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("429 body is not structured JSON: %v", err)
	}
	if apiErr.Err.Code != service.CodeQueueFull {
		t.Fatalf("429 code = %q, want %q", apiErr.Err.Code, service.CodeQueueFull)
	}
}

// TestDrainRejectsNewJobs verifies the graceful-shutdown contract: a
// draining server answers 503 to new jobs but still serves solves.
func TestDrainRejectsNewJobs(t *testing.T) {
	s, hs, c := newTestServer(t, testConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err := c.SubmitJob(ctx, solveReq())
	apiErr, ok := err.(*service.APIError)
	if !ok || apiErr.Err.Status != http.StatusServiceUnavailable || apiErr.Err.Code != service.CodeDraining {
		t.Fatalf("submit while draining = %v, want structured 503 %s", err, service.CodeDraining)
	}
	if _, status, _ := postSolve(t, hs.URL, solveReq()); status != http.StatusOK {
		t.Fatalf("solve while draining: status %d, want 200", status)
	}
}

// TestMetricsEndpoint asserts the varpower_http_* family is exposed after
// traffic, in all three formats.
func TestMetricsEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, testConfig())
	ctx := context.Background()
	if _, _, err := c.Solve(ctx, solveReq()); err != nil {
		t.Fatalf("solve: %v", err)
	}
	prom, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, family := range []string{
		"varpower_http_requests_total",
		"varpower_http_request_seconds",
		"varpower_solve_cache_hits_total",
		"varpower_queue_depth",
	} {
		if !strings.Contains(prom, family) {
			t.Fatalf("prometheus metrics missing %s", family)
		}
	}
	js, err := c.Metrics(ctx, "json")
	if err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	if !json.Valid([]byte(js)) {
		t.Fatalf("json metrics are not valid JSON")
	}
	if _, err := c.Metrics(ctx, "yaml"); err == nil {
		t.Fatalf("metrics format=yaml succeeded, want 400")
	}
}

// TestNotFoundRoute pins the structured 404 on unknown paths.
func TestNotFoundRoute(t *testing.T) {
	_, hs, _ := newTestServer(t, testConfig())
	resp, err := http.Get(hs.URL + "/v2/frobnicate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var apiErr service.APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("404 body is not structured JSON: %v", err)
	}
	if apiErr.Err.Code != service.CodeNotFound {
		t.Fatalf("404 code = %q, want %q", apiErr.Err.Code, service.CodeNotFound)
	}
}

// TestLoadgenSmoke runs a miniature load test end to end through the public
// client, asserting the phases complete error-free and the hot phase is
// served from cache. (The full ≥5× gate runs in varpowerd -selftest; here
// the point is that the loadgen harness itself works.)
func TestLoadgenSmoke(t *testing.T) {
	_, hs, _ := newTestServer(t, testConfig())
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:      hs.URL,
		Concurrency:  4,
		ColdRequests: 2,
		HotRequests:  40,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if rep.Cold.Errors != 0 || rep.Hot.Errors != 0 {
		t.Fatalf("loadgen saw errors: %+v", rep)
	}
	if rep.Hot.Misses != 1 {
		t.Fatalf("hot phase misses = %d, want 1", rep.Hot.Misses)
	}
	if rate := rep.Hot.HitRate(); rate < 0.9 {
		t.Fatalf("hot phase hit rate = %.2f, want >= 0.9", rate)
	}
}
