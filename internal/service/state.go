package service

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"varpower/internal/attrib"
	"varpower/internal/cluster"
	"varpower/internal/core"
	"varpower/internal/faults"
	"varpower/internal/snapshot"
	"varpower/internal/telemetry"
)

// SnapshotVersion is the service's snapshot payload format version. Bump it
// whenever systemState changes shape; old files then fail ErrVersion and the
// daemon rebuilds cold instead of half-parsing.
const SnapshotVersion = 1

// restoresTotal counts boot-time restore outcomes per system: "warm" (state
// adopted from a snapshot), "cold" (no snapshot present), "corrupt" (a
// snapshot existed but failed verification), "stale" (a valid snapshot for a
// different configuration — seed, module count or fault plan changed).
func restoresTotal(outcome string) *telemetry.Counter {
	return telemetry.Default().Counter("varpower_snapshot_restores_total",
		"Boot-time snapshot restore attempts by outcome.",
		telemetry.Labels{"outcome": outcome})
}

// systemState is one owned system's durable state — the snapshot payload.
// Everything the daemon spent real time computing is here: the install-time
// (or recalibrated) PVT, the generation counter that keys the caches, the
// attribution collector's ledger and drift windows, and the rendered solve
// bodies plus calibrated PMTs for the current generation. What is NOT here
// is anything derivable from configuration alone: the cluster itself is
// rebuilt from (spec, seed, fault plan) at restore, and the PVT is validated
// against it.
type systemState struct {
	Name       string        `json:"name"`
	Seed       uint64        `json:"seed"`
	Modules    int           `json:"modules"`
	Faults     string        `json:"faults,omitempty"` // fault-plan fingerprint
	Generation uint64        `json:"generation"`
	PVT        *core.PVT     `json:"pvt"`
	Attrib     *attrib.State `json:"attrib,omitempty"`
	Solves     []solveEntry  `json:"solves,omitempty"`
	PMTs       []pmtState    `json:"pmts,omitempty"`
}

// solveEntry is one rendered solve-cache row (Body is the exact response
// bytes, so a restored hit is byte-identical by construction).
type solveEntry struct {
	Key  string `json:"key"`
	Body []byte `json:"body"`
}

// pmtState is one calibrated PMT-cache row.
type pmtState struct {
	Key         string    `json:"key"`
	PMT         *core.PMT `json:"pmt"`
	Quarantined []int     `json:"quarantined,omitempty"`
}

// RestoreOutcome records how one configured system came up at boot.
type RestoreOutcome struct {
	System  string `json:"system"`
	Outcome string `json:"outcome"` // warm | cold | corrupt | stale
	Note    string `json:"note,omitempty"`
	// Generation is the adopted PVT generation on a warm restore.
	Generation uint64 `json:"generation,omitempty"`
}

// snapshotPath is the per-system snapshot file: lower-cased system name so
// two shards sharing a state directory address the same file for the same
// system (that sharing is what lets a secondary adopt its dead primary's
// state). Characters a filesystem would object to — "BG/Q Vulcan" has both
// a slash and a space — map to dashes.
func snapshotPath(dir, system string) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, strings.ToLower(system))
	return filepath.Join(dir, name+".snap")
}

// faultsFingerprint identifies the boot fault plan in a snapshot, so a
// snapshot taken under one plan is never restored under another (the PVT
// bakes in the plan's drifted caps).
func faultsFingerprint(p *faults.Plan) string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("name=%s,events=%d", p.Name, len(p.Events))
}

// SnapshotSystem durably persists one owned system's state. It is safe
// under load: the (fw, gen) pair is read atomically, the collector state is
// captured under the collector's own lock, and cache export skips in-flight
// computes.
func (s *Server) SnapshotSystem(name string) (snapshot.Meta, error) {
	if s.cfg.StateDir == "" {
		return snapshot.Meta{}, fmt.Errorf("service: no state dir configured")
	}
	b, ok := s.builtSystem(name)
	if !ok {
		return snapshot.Meta{}, fmt.Errorf("service: system %q not loaded", name)
	}
	fw, _, gen := b.snapshot()
	st := systemState{
		Name:       b.spec.Name,
		Seed:       s.cfg.Seed,
		Modules:    fw.Sys.NumModules(),
		Faults:     faultsFingerprint(s.cfg.Faults),
		Generation: gen,
		PVT:        fw.PVT,
		Attrib:     b.collector.State(),
	}
	// Only the current generation's cache rows are worth persisting: rows
	// from older generations are unreachable by key construction.
	prefix := fmt.Sprintf("g%d|%s|", gen, b.spec.Name)
	for _, e := range s.solves.export(func(k string) bool { return strings.HasPrefix(k, prefix) }) {
		st.Solves = append(st.Solves, solveEntry{Key: e.key, Body: e.val})
	}
	for _, e := range s.pmts.export(func(k string) bool { return strings.HasPrefix(k, prefix) }) {
		st.PMTs = append(st.PMTs, pmtState{Key: e.key, PMT: e.val.pmt, Quarantined: e.val.quarantined})
	}
	return snapshot.WriteJSON(snapshotPath(s.cfg.StateDir, b.spec.Name), SnapshotVersion, st)
}

// Snapshot persists every built system's state, returning one Meta per
// written file. Errors are collected, not short-circuited: one unwritable
// system must not block the others' durability.
func (s *Server) Snapshot() ([]snapshot.Meta, error) {
	if s.cfg.StateDir == "" {
		return nil, fmt.Errorf("service: no state dir configured")
	}
	var metas []snapshot.Meta
	var errs []error
	for _, name := range s.builtNames() {
		m, err := s.SnapshotSystem(name)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		metas = append(metas, m)
	}
	return metas, errors.Join(errs...)
}

// RestoreReport returns the boot-time restore outcome per configured
// system, in load/build order — cmd/varpowerd logs the restored-vs-rebuilt
// line from this. Lazy systems materialised later append their outcomes as
// they build.
func (s *Server) RestoreReport() []RestoreOutcome {
	s.baseMu.RLock()
	defer s.baseMu.RUnlock()
	return append([]RestoreOutcome{}, s.restores...)
}

// restoreSystem attempts to bring spec up warm from the state directory.
// The cluster itself is rebuilt from configuration (spec, seed, fault plan
// — identical inputs reproduce the identical machine), then the snapshot's
// PVT is adopted in place of a fresh calibration sweep, the generation
// counter continues where it left off (preserving every generation-keyed
// cache row), and the attribution history and cache contents are seeded
// back. Returns (nil, outcome) when the snapshot is absent, corrupt or
// stale; the caller falls back to a cold build.
func (s *Server) restoreSystem(spec cluster.Spec, n int) (*baseSystem, RestoreOutcome) {
	name := spec.Name
	var st systemState
	_, err := snapshot.ReadJSON(snapshotPath(s.cfg.StateDir, name), SnapshotVersion, &st)
	switch {
	case err == nil:
	case errors.Is(err, fs.ErrNotExist):
		return nil, RestoreOutcome{System: name, Outcome: "cold", Note: "no snapshot"}
	case errors.Is(err, snapshot.ErrCorrupt):
		return nil, RestoreOutcome{System: name, Outcome: "corrupt", Note: err.Error()}
	default:
		return nil, RestoreOutcome{System: name, Outcome: "corrupt", Note: err.Error()}
	}
	if note := func() string {
		switch {
		case st.Name != name:
			return fmt.Sprintf("snapshot is for %q", st.Name)
		case st.Seed != s.cfg.Seed:
			return fmt.Sprintf("seed %d, serving %d", st.Seed, s.cfg.Seed)
		case st.Modules != n:
			return fmt.Sprintf("%d modules, serving %d", st.Modules, n)
		case st.Faults != faultsFingerprint(s.cfg.Faults):
			return "fault plan changed"
		case st.PVT == nil || len(st.PVT.Entries) != n:
			return "PVT does not cover the loaded modules"
		}
		return ""
	}(); note != "" {
		return nil, RestoreOutcome{System: name, Outcome: "stale", Note: note}
	}
	sys, err := cluster.New(spec, n, s.cfg.Seed)
	if err != nil {
		return nil, RestoreOutcome{System: name, Outcome: "stale", Note: err.Error()}
	}
	if s.cfg.Faults != nil {
		inj, err := faults.NewInjector(s.cfg.Faults)
		if err != nil {
			return nil, RestoreOutcome{System: name, Outcome: "stale", Note: err.Error()}
		}
		sys.InstallFaults(inj)
	}
	fw, err := core.NewFrameworkWithPVT(sys, st.PVT)
	if err != nil {
		return nil, RestoreOutcome{System: name, Outcome: "stale", Note: err.Error()}
	}
	fw.Workers = s.cfg.Workers
	// The GPU device-class table is deterministic in (spec, seed) and is
	// not persisted; hybrid systems regenerate it on restore.
	gpvt, err := s.gpuTableFor(sys)
	if err != nil {
		return nil, RestoreOutcome{System: name, Outcome: "stale", Note: err.Error()}
	}
	b := &baseSystem{
		spec:      spec,
		fw:        fw,
		pool:      core.NewReplicaPool(fw),
		gen:       st.Generation,
		gpvt:      gpvt,
		restored:  true,
		collector: attrib.New(attrib.Config{}),
	}
	b.collector.Restore(st.Attrib)
	var solves []cachedEntry[[]byte]
	for _, e := range st.Solves {
		solves = append(solves, cachedEntry[[]byte]{key: e.Key, val: e.Body})
	}
	s.solves.seed(solves)
	var pmts []cachedEntry[calibration]
	for _, e := range st.PMTs {
		pmts = append(pmts, cachedEntry[calibration]{key: e.Key, val: calibration{pmt: e.PMT, quarantined: e.Quarantined}})
	}
	s.pmts.seed(pmts)
	return b, RestoreOutcome{
		System: name, Outcome: "warm", Generation: st.Generation,
		Note: fmt.Sprintf("gen %d, %d solve + %d pmt cache rows", st.Generation, len(solves), len(pmts)),
	}
}

// snapshotLoop periodically persists every built system until stop closes.
func (s *Server) snapshotLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_, _ = s.Snapshot()
		}
	}
}
