package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"varpower/internal/service"
)

// stateConfig is testConfig plus a state directory.
func stateConfig(dir string, workers int) service.Config {
	cfg := testConfig()
	cfg.StateDir = dir
	cfg.Workers = workers
	return cfg
}

// postJSON issues a raw POST and returns body + status.
func postJSON(t *testing.T, url string, payload any) ([]byte, int) {
	t.Helper()
	var rd *bytes.Reader
	if payload != nil {
		buf, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), resp.StatusCode
}

// getBody issues a raw GET and returns the body.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, out.Bytes())
	}
	return out.Bytes()
}

// TestSnapshotRestoreRoundTrip is the crash-safety property test: a server
// that calibrated, recalibrated (gen 1), ran a job and answered solves is
// snapshotted, torn down, and rebuilt from the snapshot. The restored
// server must be indistinguishable: deep-equal PVT and attribution state,
// the preserved generation, and byte-identical /v1/solve bodies answered
// as cache hits — at every worker count, since worker fan-out must never
// leak into durable state.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			ctx := context.Background()

			sA, hsA, cA := newTestServer(t, stateConfig(dir, workers))
			if _, err := cA.Recalibrate(ctx, service.RecalibrateRequest{
				System: "HA8K", Modules: []int{0, 1},
			}); err != nil {
				t.Fatalf("recalibrate: %v", err)
			}
			job, err := cA.SubmitJob(ctx, solveReq())
			if err != nil {
				t.Fatalf("submit job: %v", err)
			}
			if _, err := cA.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil {
				t.Fatalf("wait job: %v", err)
			}
			reqs := []service.SolveRequest{solveReq(), solveReq()}
			reqs[1].BudgetWatts = 2000
			bodies := make([][]byte, len(reqs))
			for i, r := range reqs {
				body, status, _ := postSolve(t, hsA.URL, r)
				if status != http.StatusOK {
					t.Fatalf("solve %d: status %d: %s", i, status, body)
				}
				bodies[i] = body
			}
			pvtA := getBody(t, hsA.URL+"/v1/pvt/HA8K")
			attribA, err := cA.Attrib(ctx, "HA8K")
			if err != nil {
				t.Fatalf("attrib: %v", err)
			}
			if body, status := postJSON(t, hsA.URL+"/v1/snapshot", nil); status != http.StatusOK {
				t.Fatalf("POST /v1/snapshot: status %d: %s", status, body)
			}
			if err := sA.Drain(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
			hsA.Close()

			sB, hsB, cB := newTestServer(t, stateConfig(dir, workers))
			rep := sB.RestoreReport()
			if len(rep) != 1 || rep[0].Outcome != "warm" {
				t.Fatalf("restore report = %+v, want one warm outcome", rep)
			}
			sys, err := cB.Systems(ctx)
			if err != nil {
				t.Fatalf("systems: %v", err)
			}
			if got := sys[0]["pvt_generation"].(float64); got != 1 {
				t.Fatalf("restored pvt_generation = %v, want 1 (preserved, not bumped)", got)
			}
			if restored, _ := sys[0]["restored"].(bool); !restored {
				t.Fatalf("restored flag missing from /v1/systems row: %v", sys[0])
			}
			if pvtB := getBody(t, hsB.URL+"/v1/pvt/HA8K"); !bytes.Equal(pvtA, pvtB) {
				t.Fatalf("PVT diverged across restore:\n a=%s\n b=%s", pvtA, pvtB)
			}
			attribB, err := cB.Attrib(ctx, "HA8K")
			if err != nil {
				t.Fatalf("attrib after restore: %v", err)
			}
			ja, _ := json.Marshal(attribA)
			jb, _ := json.Marshal(attribB)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("attribution state diverged across restore:\n a=%s\n b=%s", ja, jb)
			}
			for i, r := range reqs {
				body, status, disp := postSolve(t, hsB.URL, r)
				if status != http.StatusOK {
					t.Fatalf("restored solve %d: status %d: %s", i, status, body)
				}
				if disp != "hit" {
					t.Fatalf("restored solve %d disposition = %q, want hit (cache carried across restart)", i, disp)
				}
				if !bytes.Equal(body, bodies[i]) {
					t.Fatalf("solve %d body diverged across restore:\n a=%s\n b=%s", i, bodies[i], body)
				}
			}
		})
	}
}

// TestSnapshotCorruptFallsBackCold bit-flips the snapshot payload on disk
// and asserts the next boot rejects it loudly (outcome "corrupt"), rebuilds
// cold, and serves correct answers at generation 0.
func TestSnapshotCorruptFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	sA, hsA, _ := newTestServer(t, stateConfig(dir, 0))
	want, status, _ := postSolve(t, hsA.URL, solveReq())
	if status != http.StatusOK {
		t.Fatalf("solve: status %d", status)
	}
	if _, err := sA.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	hsA.Close()

	path := filepath.Join(dir, "ha8k.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	sB, hsB, cB := newTestServer(t, stateConfig(dir, 0))
	rep := sB.RestoreReport()
	if len(rep) != 1 || rep[0].Outcome != "corrupt" {
		t.Fatalf("restore report = %+v, want one corrupt outcome", rep)
	}
	sys, err := cB.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys[0]["pvt_generation"].(float64); got != 0 {
		t.Fatalf("cold rebuild generation = %v, want 0", got)
	}
	if restored, _ := sys[0]["restored"].(bool); restored {
		t.Fatal("cold rebuild must not claim restored state")
	}
	got, status, disp := postSolve(t, hsB.URL, solveReq())
	if status != http.StatusOK || disp == "hit" {
		t.Fatalf("cold solve: status %d disp %q, want 200 and a computed answer", status, disp)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cold rebuild solve diverged from the original:\n a=%s\n b=%s", want, got)
	}
}

// TestSnapshotStaleConfigRebuilds asserts a valid snapshot written under a
// different serving seed is refused as stale, never half-adopted.
func TestSnapshotStaleConfigRebuilds(t *testing.T) {
	dir := t.TempDir()
	sA, hsA, _ := newTestServer(t, stateConfig(dir, 0))
	if _, err := sA.Snapshot(); err != nil {
		t.Fatal(err)
	}
	hsA.Close()

	cfg := stateConfig(dir, 0)
	cfg.Seed = 0xbeef
	sB, _, _ := newTestServer(t, cfg)
	rep := sB.RestoreReport()
	if len(rep) != 1 || rep[0].Outcome != "stale" {
		t.Fatalf("restore report = %+v, want one stale outcome", rep)
	}
}

// TestLazySystemRestoresPrimarySnapshot is the failover-adoption property:
// a "secondary" configured with the system only as lazy, sharing the
// primary's state directory, must materialise it on first request by
// restoring the primary's snapshot — answering the primary's cached solves
// as hits at the primary's generation.
func TestLazySystemRestoresPrimarySnapshot(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	sA, hsA, cA := newTestServer(t, stateConfig(dir, 0))
	if _, err := cA.Recalibrate(ctx, service.RecalibrateRequest{
		System: "HA8K", Modules: []int{3},
	}); err != nil {
		t.Fatal(err)
	}
	want, status, _ := postSolve(t, hsA.URL, solveReq())
	if status != http.StatusOK {
		t.Fatalf("primary solve: %d", status)
	}
	if _, err := sA.Snapshot(); err != nil {
		t.Fatal(err)
	}
	hsA.Close()

	cfg := service.Config{Systems: []string{"Cab"}, Modules: 32, Seed: 0x5c15,
		StateDir: dir, LazySystems: []string{"HA8K"}}
	sB, hsB, cB := newTestServer(t, cfg)
	if rep := sB.RestoreReport(); len(rep) != 1 || rep[0].System != "Cab" {
		t.Fatalf("boot restore report = %+v, want Cab only (HA8K still lazy)", rep)
	}
	sys, err := cB.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys) != 1 {
		t.Fatalf("lazy system listed before first request: %v", sys)
	}
	got, status, disp := postSolve(t, hsB.URL, solveReq())
	if status != http.StatusOK {
		t.Fatalf("failover solve: status %d: %s", status, got)
	}
	if disp != "hit" {
		t.Fatalf("failover solve disposition = %q, want hit from the adopted snapshot", disp)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover solve diverged from the primary's answer:\n a=%s\n b=%s", want, got)
	}
	sys, err = cB.Systems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys) != 2 {
		t.Fatalf("materialised lazy system missing from /v1/systems: %v", sys)
	}
	var row map[string]any
	for _, r := range sys {
		if r["name"] == "HA8K" {
			row = r
		}
	}
	if row == nil || row["pvt_generation"].(float64) != 1 || row["restored"] != true {
		t.Fatalf("adopted HA8K row = %v, want gen 1 restored", row)
	}
}
