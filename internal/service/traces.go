// This file holds the request-trace and SLO endpoints: the serving side of
// internal/obs. Traces are exported either as JSON span trees or, per trace,
// as Chrome trace-event JSON through the same flight exporter that renders
// simulation timelines — one viewer for both kinds of artifact.

package service

import (
	"net/http"
	"strings"

	"varpower/internal/flight"
	"varpower/internal/obs"
)

// handleTraces is GET /v1/traces: every retained trace entry, oldest first.
// 404 when observability is disabled — the ring does not exist.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	o := s.cfg.Obs
	if !o.Enabled() {
		writeError(w, http.StatusNotFound, CodeNotFound, "request tracing is disabled (-trace=off)")
		return
	}
	entries := o.Traces()
	views := make([]obs.TraceView, 0, len(entries))
	for _, rt := range entries {
		views = append(views, rt.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": views})
}

// handleTrace is GET /v1/traces/{id}: every retained entry of one trace —
// a job's admission request and its execution continuation share an ID and
// merge into one tree. ?format=perfetto renders Chrome trace-event JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	o := s.cfg.Obs
	if !o.Enabled() {
		writeError(w, http.StatusNotFound, CodeNotFound, "request tracing is disabled (-trace=off)")
		return
	}
	id, err := obs.ParseTraceID(strings.TrimSpace(r.PathValue("id")))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	entries := o.Lookup(id)
	if len(entries) == 0 {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"no retained trace %s (the ring keeps %s)", id, "recent and slow/error requests")
		return
	}
	views := make([]obs.TraceView, 0, len(entries))
	for _, rt := range entries {
		views = append(views, rt.View())
	}
	switch strings.ToLower(r.URL.Query().Get("format")) {
	case "", "json":
		writeJSON(w, http.StatusOK, map[string]any{"trace_id": id.String(), "entries": views})
	case "perfetto", "chrome":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="trace-`+id.String()+`.json"`)
		_ = flight.WriteChromeTrace(w, chromeEvents(views))
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"unknown trace format %q (want json or perfetto)", r.URL.Query().Get("format"))
	}
}

// chromeEvents converts merged trace views to Chrome trace events: one
// process, one thread per entry (admission, continuation, …), each span a
// complete ("X") slice at its offset from the trace's first entry. Span
// attributes ride in args, so the viewer's selection panel shows cache
// dispositions and queue depths.
func chromeEvents(views []obs.TraceView) []flight.ChromeEvent {
	const pid = 1
	events := []flight.ChromeEvent{
		{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]string{"name": "request"}},
	}
	if len(views) == 0 {
		return events
	}
	t0 := views[0].Start
	for i, v := range views {
		tid := i + 1
		events = append(events, flight.ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]string{"name": v.Method + " " + v.Route},
		})
		base := v.Start.Sub(t0).Microseconds()
		for _, sp := range v.Spans {
			args := map[string]string{"span_id": sp.SpanID}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Val
			}
			if sp.Err != "" {
				args["error"] = sp.Err
			}
			events = append(events, flight.ChromeEvent{
				Name: sp.Name, Ph: "X", Pid: pid, Tid: tid,
				Ts:  flight.US(float64(base + sp.StartUS)),
				Dur: flight.US(float64(sp.DurUS)),
				Cat: "span", Args: args,
			})
		}
	}
	return events
}

// handleSLO is GET /v1/slo: the per-route burn-rate report. The telemetry
// gauges are refreshed as a side effect, so a scrape that follows sees the
// same numbers.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	o := s.cfg.Obs
	if !o.Enabled() {
		writeError(w, http.StatusNotFound, CodeNotFound, "SLO monitoring is disabled (-trace=off)")
		return
	}
	o.PublishSLO()
	writeJSON(w, http.StatusOK, o.SLOReport())
}
