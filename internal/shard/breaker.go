package shard

import (
	"sync"
	"time"

	"varpower/internal/xrand"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The three states. Closed passes traffic and counts consecutive failures;
// Open refuses traffic until a jittered backoff deadline; HalfOpen admits
// exactly one probe request — its outcome decides between Closed and a
// longer Open.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String renders the state for /v1/shards and metrics.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterises a Breaker.
type BreakerConfig struct {
	// FailThreshold is how many consecutive failures trip Closed → Open
	// (default 3: one transport error is a blip, three in a row is a dead
	// shard).
	FailThreshold int
	// OpenBackoff is the first Open hold time (default 500ms); each
	// consecutive re-open doubles it up to MaxBackoff (default 10s). The
	// actual hold is jittered ±25% so a fleet of routers does not probe a
	// recovering shard in lockstep.
	OpenBackoff time.Duration
	MaxBackoff  time.Duration
	// Now is the clock (default time.Now; injectable for tests).
	Now func() time.Time
	// JitterSeed seeds the deterministic jitter stream (default a fixed
	// seed; routers in one fleet should differ, e.g. hash of the shard
	// name).
	JitterSeed uint64
}

// Breaker is a three-state circuit breaker guarding one shard. All methods
// are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	state   BreakerState
	fails   int       // consecutive failures while Closed
	opens   int       // consecutive Open episodes (backoff exponent)
	until   time.Time // Open expiry
	probing bool      // a HalfOpen probe is in flight
	rng     *xrand.Stream
}

// NewBreaker builds a breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.OpenBackoff <= 0 {
		cfg.OpenBackoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 0xb4ea4e5
	}
	return &Breaker{cfg: cfg, rng: xrand.New(seed)}
}

// Allow reports whether a request may proceed. Open consumes no traffic
// until its deadline, then transitions to HalfOpen and admits a single
// probe; further callers are refused until the probe settles via Success
// or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a request outcome that proves the shard alive: resets
// the failure streak, closes the breaker from any state, and forgets the
// backoff history.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.opens = 0
	b.probing = false
}

// Failure records a transport-level failure. While Closed it advances the
// streak and trips Open at the threshold; a failed HalfOpen probe re-opens
// with doubled (jittered) backoff.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	case Open:
		// A straggler from before the trip; the deadline already stands.
	}
}

// trip moves to Open with exponential, jittered backoff. Callers hold mu.
func (b *Breaker) trip() {
	backoff := b.cfg.OpenBackoff << b.opens
	if backoff > b.cfg.MaxBackoff || backoff <= 0 {
		backoff = b.cfg.MaxBackoff
	}
	// ±25% jitter: deterministic per breaker, decorrelated across a fleet
	// seeded differently.
	jitter := 0.75 + 0.5*b.rng.Float64()
	b.state = Open
	b.probing = false
	b.fails = 0
	b.opens++
	b.until = b.cfg.Now().Add(time.Duration(float64(backoff) * jitter))
}

// State returns the current position (Open past its deadline reads as
// Open until the next Allow transitions it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
