package shard

import (
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newClock() *fakeClock                     { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.Now = clk.now
	return NewBreaker(cfg)
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{FailThreshold: 3})
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("refused after %d failures (threshold 3)", i+1)
		}
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("state after 3rd failure = %v, want Open", b.State())
	}
	if b.Allow() {
		t.Fatal("Open breaker allowed traffic before its deadline")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{FailThreshold: 3})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("Success did not reset the failure streak")
	}
}

// TestBreakerHalfOpenSingleProbe: past the deadline exactly one caller is
// admitted; a second is refused until the probe settles.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{FailThreshold: 1, OpenBackoff: time.Second})
	b.Failure()
	if b.Allow() {
		t.Fatal("allowed while Open")
	}
	clk.advance(2 * time.Second) // past deadline even with +25% jitter
	if !b.Allow() {
		t.Fatal("probe refused past the deadline")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("probe success did not close the breaker")
	}
}

// TestBreakerProbeFailureDoublesBackoff: each failed probe re-opens with
// roughly doubled hold time (within the ±25% jitter envelope).
func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{FailThreshold: 1, OpenBackoff: time.Second, MaxBackoff: time.Minute})
	b.Failure() // open #1: hold in [0.75s, 1.25s]
	clk.advance(1300 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused past first deadline")
	}
	b.Failure() // open #2: hold in [1.5s, 2.5s]
	clk.advance(1400 * time.Millisecond)
	if b.Allow() {
		t.Fatal("second Open honored the first backoff; should have doubled")
	}
	clk.advance(1200 * time.Millisecond) // total 2.6s > 2.5s max jittered
	if !b.Allow() {
		t.Fatal("probe refused past doubled deadline")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{FailThreshold: 1, OpenBackoff: time.Second, MaxBackoff: 4 * time.Second})
	for i := 0; i < 10; i++ {
		b.Failure()
		clk.advance(6 * time.Second) // > 4s * 1.25 jitter: always past deadline
		if !b.Allow() {
			t.Fatalf("round %d: probe refused past the capped deadline", i)
		}
	}
}

func TestBreakerFailureWhileOpenIsNoop(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{FailThreshold: 1, OpenBackoff: time.Second})
	b.Failure()
	deadline := b.until
	b.Failure() // straggler from before the trip
	if b.until != deadline {
		t.Fatal("straggler failure extended the Open deadline")
	}
}
