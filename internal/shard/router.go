package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"varpower/internal/obs"
	"varpower/internal/service"
	"varpower/internal/service/client"
	"varpower/internal/telemetry"
	"varpower/internal/xrand"
)

// Router-layer telemetry: the varpower_shard_* family. Per-shard health and
// breaker position are gauges (current state); proxied requests, probes and
// failovers are counters.
func shardGauges(name string) (healthy, breaker *telemetry.Gauge) {
	reg := telemetry.Default()
	l := telemetry.Labels{"shard": name}
	healthy = reg.Gauge("varpower_shard_healthy",
		"Whether the shard's last health probe succeeded (1) or failed (0).", l)
	breaker = reg.Gauge("varpower_shard_breaker_state",
		"The shard's circuit-breaker position: 0 closed, 1 open, 2 half-open.", l)
	return
}

// RouterConfig parameterises a Router.
type RouterConfig struct {
	// Set is the shard fleet (required).
	Set *Set
	// Obs enables router request tracing and per-shard SLO burn monitoring
	// (routes "shard:<name>"); nil disables both.
	Obs *obs.Observer
	// ProbeInterval is the health-check cadence (default 250ms); 0 < x.
	// ProbeTimeout bounds one probe (default ProbeInterval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Breaker parameterises every shard's circuit breaker; the zero value
	// selects the defaults (trip after 3, 500ms..10s jittered backoff).
	Breaker BreakerConfig
	// NewClient builds the per-shard client (default client.New; injectable
	// for tests).
	NewClient func(addr string) *client.Client
}

// shardState is the router's view of one member.
type shardState struct {
	member  Member
	client  *client.Client
	breaker *Breaker
	healthy atomic.Bool

	mHealthy, mBreaker *telemetry.Gauge
}

// setBreakerGauge publishes the breaker position.
func (ss *shardState) publish() {
	if ss.healthy.Load() {
		ss.mHealthy.Set(1)
	} else {
		ss.mHealthy.Set(0)
	}
	ss.mBreaker.Set(float64(ss.breaker.State()))
}

// Router proxies varpowerd's control-plane API across a shard set: each
// request routes to the owning shard (rendezvous primary), failing over to
// the designated secondary when the primary's breaker is open or its
// forward fails at the transport level. The proxy relays raw bytes, so the
// shards' byte-identical solve bodies — and their X-Varpower-Cache /
// Retry-After headers — survive the hop untouched.
type Router struct {
	cfg    RouterConfig
	shards []*shardState
	byName map[string]*shardState
	mux    *http.ServeMux
	start  time.Time

	// jobMu guards jobOwner: job IDs are minted by the owning shard at
	// submission, so polls must return to the same shard. Bounded FIFO; a
	// poll for an evicted (or router-restart-lost) ID fans out.
	jobMu    sync.Mutex
	jobOwner map[string]string
	jobOrder []string

	mFailovers  *telemetry.Counter
	mExhausted  *telemetry.Counter
	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// maxTrackedJobs bounds the job-owner map.
const maxTrackedJobs = 4096

// NewRouter builds a router over the set. Call Start to begin health
// probing, Stop to end it.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Set == nil || cfg.Set.Len() == 0 {
		return nil, fmt.Errorf("shard: router needs a non-empty shard set")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.NewClient == nil {
		cfg.NewClient = client.New
	}
	reg := telemetry.Default()
	r := &Router{
		cfg:      cfg,
		byName:   make(map[string]*shardState),
		jobOwner: make(map[string]string),
		start:    time.Now(),
		mFailovers: reg.Counter("varpower_shard_failovers_total",
			"Requests the router answered from a non-primary shard.", nil),
		mExhausted: reg.Counter("varpower_shard_exhausted_total",
			"Requests that failed on every candidate shard (answered 503).", nil),
	}
	for _, m := range cfg.Set.Members() {
		bc := cfg.Breaker
		if bc.JitterSeed == 0 {
			bc.JitterSeed = xrand.HashString(m.Name)
		}
		ss := &shardState{member: m, client: cfg.NewClient(m.Addr), breaker: NewBreaker(bc)}
		ss.healthy.Store(true) // optimistic until the first probe says otherwise
		ss.mHealthy, ss.mBreaker = shardGauges(m.Name)
		ss.publish()
		r.shards = append(r.shards, ss)
		r.byName[m.Name] = ss
	}
	r.mux = r.routes()
	return r, nil
}

// Objectives returns per-shard availability objectives ("shard:<name>"
// routes) plus the default route objectives — the SLO set a router's
// observer should be built with.
func Objectives(s *Set) []obs.Objective {
	objs := obs.DefaultObjectives()
	for _, m := range s.Members() {
		objs = append(objs, obs.Objective{Route: "shard:" + m.Name, Availability: 0.999})
	}
	return objs
}

// Handler returns the router's route set.
func (r *Router) Handler() http.Handler { return r.mux }

// Start launches the health-probe loop.
func (r *Router) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.probeCancel = cancel
	r.probeDone = make(chan struct{})
	go r.probeLoop(ctx)
}

// Stop ends the probe loop.
func (r *Router) Stop() {
	if r.probeCancel != nil {
		r.probeCancel()
		<-r.probeDone
	}
}

// probeLoop health-checks every shard each interval. Probe outcomes feed
// the breakers: a probe success closes a shard's breaker immediately (the
// recovery path after a restart — no live request has to gamble first),
// and probe failures accumulate toward a trip exactly like request
// failures.
func (r *Router) probeLoop(ctx context.Context) {
	defer close(r.probeDone)
	probes := func(name, outcome string) *telemetry.Counter {
		return telemetry.Default().Counter("varpower_shard_probes_total",
			"Shard health probes, by shard and outcome.",
			telemetry.Labels{"shard": name, "outcome": outcome})
	}
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, ss := range r.shards {
			pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
			_, err := ss.client.Healthz(pctx)
			cancel()
			if err != nil {
				ss.healthy.Store(false)
				ss.breaker.Failure()
				probes(ss.member.Name, "fail").Inc()
			} else {
				ss.healthy.Store(true)
				ss.breaker.Success()
				probes(ss.member.Name, "ok").Inc()
			}
			ss.publish()
		}
	}
}

// routes wires the router's endpoint table.
func (r *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /v1/shards", r.handleShards)
	mux.HandleFunc("GET /v1/systems", r.handleSystems)
	mux.HandleFunc("POST /v1/solve", r.systemRouted("/v1/solve"))
	mux.HandleFunc("POST /v1/recalibrate", r.systemRouted("/v1/recalibrate"))
	mux.HandleFunc("POST /v1/jobs", r.systemRouted("/v1/jobs"))
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleGetJob)
	mux.HandleFunc("GET /v1/pvt/{system}", r.pathRouted("/v1/pvt"))
	mux.HandleFunc("GET /v1/attrib/{system}", r.pathRouted("/v1/attrib"))
	mux.HandleFunc("GET /v1/metrics", r.handleMetrics)
	mux.HandleFunc("GET /v1/slo", r.handleSLO)
	mux.HandleFunc("GET /v1/traces", r.handleTraces)
	mux.HandleFunc("POST /v1/snapshot", r.handleSnapshot)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		writeErr(w, http.StatusNotFound, service.CodeNotFound,
			"no route for %s %s", req.Method, req.URL.Path)
	})
	return mux
}

// writeErr renders the service's structured error body.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&service.APIError{Err: service.ErrorBody{
		Status: status, Code: code, Message: fmt.Sprintf(format, args...),
	}})
}

// writeOK renders a JSON body.
func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

// handleHealthz reports the router's own liveness plus the fleet's.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	shards := make(map[string]bool, len(r.shards))
	healthyN := 0
	for _, ss := range r.shards {
		h := ss.healthy.Load()
		shards[ss.member.Name] = h
		if h {
			healthyN++
		}
	}
	writeOK(w, map[string]any{
		"status":   "ok",
		"role":     "router",
		"uptime_s": int64(time.Since(r.start).Seconds()),
		"healthy":  healthyN,
		"shards":   shards,
	})
}

// ShardStatus is one /v1/shards row.
type ShardStatus struct {
	Name    string `json:"name"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"`
}

// handleShards reports each member's health and breaker position.
func (r *Router) handleShards(w http.ResponseWriter, _ *http.Request) {
	out := make([]ShardStatus, 0, len(r.shards))
	for _, ss := range r.shards {
		out = append(out, ShardStatus{
			Name:    ss.member.Name,
			Addr:    ss.member.Addr,
			Healthy: ss.healthy.Load(),
			Breaker: ss.breaker.State().String(),
		})
	}
	writeOK(w, map[string]any{"shards": out})
}

// handleSystems merges the fleet's system lists: each shard reports the
// systems it has built, deduplicated by name (the primary's row wins by
// iteration order of the ranked shards per system; in practice only one
// shard has built any given system until a failover).
func (r *Router) handleSystems(w http.ResponseWriter, req *http.Request) {
	seen := make(map[string]bool)
	var merged []json.RawMessage
	for _, ss := range r.shards {
		if !ss.healthy.Load() || !ss.breaker.Allow() {
			continue
		}
		fwd, err := ss.client.Forward(req.Context(), http.MethodGet, "/v1/systems", nil, nil)
		if err != nil {
			ss.breaker.Failure()
			continue
		}
		ss.breaker.Success()
		if fwd.Status != http.StatusOK {
			continue
		}
		var body struct {
			Systems []json.RawMessage `json:"systems"`
		}
		if json.Unmarshal(fwd.Body, &body) != nil {
			continue
		}
		for _, row := range body.Systems {
			var id struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(row, &id) != nil || seen[id.Name] {
				continue
			}
			seen[id.Name] = true
			merged = append(merged, row)
		}
	}
	writeOK(w, map[string]any{"systems": merged})
}

// handleSnapshot fans the snapshot request out to every healthy shard.
func (r *Router) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	out := make(map[string]any, len(r.shards))
	status := http.StatusOK
	for _, ss := range r.shards {
		if !ss.healthy.Load() {
			out[ss.member.Name] = map[string]any{"error": "unhealthy"}
			continue
		}
		fwd, err := ss.client.Forward(req.Context(), http.MethodPost, "/v1/snapshot", nil, nil)
		if err != nil {
			out[ss.member.Name] = map[string]any{"error": err.Error()}
			status = http.StatusInternalServerError
			continue
		}
		out[ss.member.Name] = json.RawMessage(fwd.Body)
		if fwd.Status != http.StatusOK {
			status = fwd.Status
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"shards": out})
}

// handleMetrics re-exports the router process's telemetry registry (the
// varpower_shard_* family lives here, not on the shards).
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	r.cfg.Obs.PublishSLO()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.Write(w, telemetry.Default(), telemetry.FormatPrometheus)
}

// handleSLO serves the router's burn-rate report — the per-shard
// "shard:<name>" routes plus anything else its observer monitors.
func (r *Router) handleSLO(w http.ResponseWriter, _ *http.Request) {
	if !r.cfg.Obs.Enabled() {
		writeErr(w, http.StatusNotFound, service.CodeNotFound, "SLO monitoring is disabled")
		return
	}
	r.cfg.Obs.PublishSLO()
	writeOK(w, r.cfg.Obs.SLOReport())
}

// handleTraces serves the router's retained request traces.
func (r *Router) handleTraces(w http.ResponseWriter, _ *http.Request) {
	o := r.cfg.Obs
	if !o.Enabled() {
		writeErr(w, http.StatusNotFound, service.CodeNotFound, "request tracing is disabled")
		return
	}
	entries := o.Traces()
	views := make([]obs.TraceView, 0, len(entries))
	for _, rt := range entries {
		views = append(views, rt.View())
	}
	writeOK(w, map[string]any{"traces": views})
}

// passthroughHeaders are the request headers a proxy must relay: trace
// context (the shard's spans join the caller's trace), request correlation
// and content type.
var passthroughHeaders = []string{"Traceparent", "X-Request-Id", "Content-Type"}

// relayHeaders are the response headers relayed back to the caller.
var relayHeaders = []string{"Content-Type", "X-Varpower-Cache", "Retry-After", "Traceparent", "X-Request-Id"}

// systemRouted builds a handler for a POST endpoint routed by the request
// body's "system" field.
func (r *Router) systemRouted(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, service.CodeBadRequest, "read body: %v", err)
			return
		}
		var peek struct {
			System string `json:"system"`
		}
		if err := json.Unmarshal(body, &peek); err != nil || strings.TrimSpace(peek.System) == "" {
			writeErr(w, http.StatusBadRequest, service.CodeBadRequest,
				"request must carry a JSON body with a \"system\" field")
			return
		}
		r.forward(w, req, peek.System, req.Method, path, body)
	}
}

// pathRouted builds a handler for a GET endpoint routed by the {system}
// path segment.
func (r *Router) pathRouted(prefix string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		system := req.PathValue("system")
		r.forward(w, req, system, http.MethodGet, prefix+"/"+system, nil)
	}
}

// forward proxies one request to system's ranked shards: the primary
// unless its breaker refuses, then the designated secondary. Only
// transport-level failures advance down the ranking — an HTTP error from a
// live shard IS the answer (the shard's 4xx/5xx semantics must survive the
// proxy). When every candidate fails the caller gets 503 + Retry-After,
// which keeps a total shard outage inside the 429/503 shed-load budget —
// never a hung request, never a raw transport error.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, system, method, path string, body []byte) {
	ctx := req.Context()
	var rt *obs.RequestTrace
	o := r.cfg.Obs
	if o.Enabled() {
		ctx2, t := o.StartRequest(ctx, obs.Request{
			Method:      method,
			Route:       path,
			Traceparent: req.Header.Get("Traceparent"),
			RequestID:   req.Header.Get("X-Request-Id"),
		})
		ctx, rt = ctx2, t
	}
	status := r.forwardRanked(ctx, w, req, system, method, path, body)
	if rt != nil {
		o.EndRequest(rt, status)
	}
}

// forwardRanked is forward's body; returns the status answered.
func (r *Router) forwardRanked(ctx context.Context, w http.ResponseWriter, req *http.Request, system, method, path string, body []byte) int {
	hdr := make(http.Header, len(passthroughHeaders))
	for _, k := range passthroughHeaders {
		if v := req.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	ranked := r.cfg.Set.RankFor(system)
	if len(ranked) > 2 {
		ranked = ranked[:2] // primary + designated secondary only
	}
	reqs := func(name, code string) *telemetry.Counter {
		return telemetry.Default().Counter("varpower_shard_requests_total",
			"Requests proxied to shards, by shard and status code.",
			telemetry.Labels{"shard": name, "code": code})
	}
	for i, m := range ranked {
		ss := r.byName[m.Name]
		if !ss.breaker.Allow() {
			continue
		}
		_, sp := obs.StartSpan(ctx, "proxy")
		sp.SetAttr("shard", m.Name)
		sp.SetAttr("path", path)
		start := time.Now()
		fwd, err := ss.client.Forward(ctx, method, path, body, hdr)
		dur := time.Since(start)
		if err != nil {
			ss.breaker.Failure()
			ss.publish()
			sp.Fail(err)
			sp.End()
			reqs(m.Name, "error").Inc()
			r.cfg.Obs.RecordSLO("shard:"+m.Name, dur, http.StatusBadGateway)
			continue
		}
		ss.breaker.Success()
		ss.publish()
		sp.SetInt("status", fwd.Status)
		if i > 0 {
			sp.SetAttr("failover", "true")
			r.mFailovers.Inc()
		}
		sp.End()
		reqs(m.Name, fmt.Sprint(fwd.Status)).Inc()
		r.cfg.Obs.RecordSLO("shard:"+m.Name, dur, fwd.Status)
		if path == "/v1/jobs" && fwd.Status == http.StatusAccepted {
			r.recordJobOwner(fwd.Body, m.Name)
		}
		for _, k := range relayHeaders {
			if v := fwd.Header.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.Header().Set("X-Varpower-Shard", m.Name)
		w.WriteHeader(fwd.Status)
		_, _ = w.Write(fwd.Body)
		return fwd.Status
	}
	r.mExhausted.Inc()
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, service.CodeDraining,
		"no shard available for system %q (primary and secondary down)", system)
	return http.StatusServiceUnavailable
}

// recordJobOwner remembers which shard minted a job ID (bounded FIFO).
func (r *Router) recordJobOwner(body []byte, shard string) {
	var st struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &st) != nil || st.ID == "" {
		return
	}
	r.jobMu.Lock()
	defer r.jobMu.Unlock()
	if _, dup := r.jobOwner[st.ID]; !dup {
		r.jobOrder = append(r.jobOrder, st.ID)
	}
	r.jobOwner[st.ID] = shard
	for len(r.jobOrder) > maxTrackedJobs {
		delete(r.jobOwner, r.jobOrder[0])
		r.jobOrder = r.jobOrder[1:]
	}
}

// handleGetJob routes a job poll to the shard that minted the ID; an
// untracked ID (router restarted, entry evicted) fans out and relays the
// first non-404 answer.
func (r *Router) handleGetJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	path := "/v1/jobs/" + id
	r.jobMu.Lock()
	owner, tracked := r.jobOwner[id]
	r.jobMu.Unlock()
	if tracked {
		if ss, ok := r.byName[owner]; ok && ss.breaker.Allow() {
			fwd, err := ss.client.Forward(req.Context(), http.MethodGet, path, nil, nil)
			if err == nil {
				ss.breaker.Success()
				relay(w, fwd, ss.member.Name)
				return
			}
			ss.breaker.Failure()
		}
	}
	for _, ss := range r.shards {
		if ss.member.Name == owner || !ss.breaker.Allow() {
			continue
		}
		fwd, err := ss.client.Forward(req.Context(), http.MethodGet, path, nil, nil)
		if err != nil {
			ss.breaker.Failure()
			continue
		}
		ss.breaker.Success()
		if fwd.Status == http.StatusNotFound {
			continue
		}
		relay(w, fwd, ss.member.Name)
		return
	}
	writeErr(w, http.StatusNotFound, service.CodeNotFound, "no shard knows job %q", id)
}

// relay copies a forwarded response to the caller.
func relay(w http.ResponseWriter, fwd *client.Forwarded, shard string) {
	for _, k := range relayHeaders {
		if v := fwd.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Varpower-Shard", shard)
	w.WriteHeader(fwd.Status)
	_, _ = w.Write(fwd.Body)
}
