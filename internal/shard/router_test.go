// Router tests live in package shard_test and front real service.Server
// shards over httptest — the router is exercised exactly the way varpowerd
// wires it.
package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"varpower/internal/service"
	"varpower/internal/shard"
)

// fleet is a two-shard test fleet behind a router.
type fleet struct {
	set     *shard.Set
	router  *shard.Router
	front   *httptest.Server
	servers map[string]*httptest.Server // by shard name
}

// newFleet boots two shards that can each serve every system (Workers: 1,
// shared seed, so solve bodies are byte-identical across shards) plus a
// router with a fast probe cadence.
func newFleet(t *testing.T, cfg shard.RouterConfig) *fleet {
	t.Helper()
	servers := map[string]*httptest.Server{}
	var parts []string
	for _, name := range []string{"a", "b"} {
		svc, err := service.New(service.Config{
			Systems: []string{"HA8K", "Cab"},
			Modules: 16,
			Seed:    0x5c15,
			Workers: 1,
		})
		if err != nil {
			t.Fatalf("service.New(%s): %v", name, err)
		}
		hs := httptest.NewServer(svc.Handler())
		t.Cleanup(hs.Close)
		servers[name] = hs
		parts = append(parts, name+"="+hs.URL)
	}
	set, err := shard.ParseSet(strings.Join(parts, ","))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Set = set
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // probing off unless a test opts in
	}
	if cfg.Breaker.FailThreshold == 0 {
		cfg.Breaker = shard.BreakerConfig{FailThreshold: 2, OpenBackoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	}
	r, err := shard.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Stop)
	front := httptest.NewServer(r.Handler())
	t.Cleanup(front.Close)
	return &fleet{set: set, router: r, front: front, servers: servers}
}

// solve posts the canonical solve through the router and returns body,
// status and the answering shard.
func (f *fleet) solve(t *testing.T) ([]byte, int, string) {
	t.Helper()
	body := []byte(`{"system":"HA8K","workload":"dgemm","scheme":"vapc","budget_watts":2400}`)
	resp, err := http.Post(f.front.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("solve through router: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return b, resp.StatusCode, resp.Header.Get("X-Varpower-Shard")
}

func TestRouterRoutesToPrimary(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{})
	body, status, shardName := f.solve(t)
	if status != http.StatusOK {
		t.Fatalf("solve = %d: %s", status, body)
	}
	if want := f.set.Primary("HA8K").Name; shardName != want {
		t.Fatalf("answered by %q, want primary %q", shardName, want)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("solve body not JSON: %v", err)
	}
	if _, ok := out["alpha"]; !ok {
		t.Fatalf("solve body missing alpha: %s", body)
	}
}

// TestRouterFailsOverToSecondary: kill HA8K's primary; the router must
// answer from the secondary with an equally valid body, and the primary's
// breaker must open after the threshold.
func TestRouterFailsOverToSecondary(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{})
	primary := f.set.Primary("HA8K").Name
	secondary, _ := f.set.Secondary("HA8K")

	before, status, _ := f.solve(t)
	if status != http.StatusOK {
		t.Fatalf("pre-kill solve = %d", status)
	}

	f.servers[primary].CloseClientConnections()
	f.servers[primary].Close()

	for i := 0; i < 3; i++ {
		after, status, shardName := f.solve(t)
		if status != http.StatusOK {
			t.Fatalf("post-kill solve %d = %d: %s", i, status, after)
		}
		if shardName != secondary.Name {
			t.Fatalf("post-kill solve answered by %q, want secondary %q", shardName, secondary.Name)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("failover changed the solve body:\n pre: %s\npost: %s", before, after)
		}
	}
}

// TestRouterAllShardsDownIsBudgetedError: with the whole fleet dead the
// router must answer 503 + Retry-After — inside the shed-load error budget,
// never a hung request or a raw transport error.
func TestRouterAllShardsDownIsBudgetedError(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{})
	for _, hs := range f.servers {
		hs.CloseClientConnections()
		hs.Close()
	}
	var status int
	var body []byte
	// First solves burn the breakers' failure threshold; the final answer
	// must still be a clean 503 every time.
	for i := 0; i < 4; i++ {
		body, status, _ = f.solve(t)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("solve %d with fleet down = %d: %s", i, status, body)
		}
	}
	resp, err := http.Post(f.front.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"system":"HA8K","workload":"dgemm","scheme":"vapc","budget_watts":2400}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var apiErr service.APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("503 body not a structured error: %v", err)
	}
	if apiErr.Err.Code != service.CodeDraining {
		t.Fatalf("code = %q", apiErr.Err.Code)
	}
}

// TestRouterBreakerRecoversViaProbes: after the primary dies and its
// breaker opens, restarting a healthy process at the same address must be
// discovered by the probe loop, closing the breaker without a live request
// having to gamble.
func TestRouterBreakerRecoversViaProbes(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{
		ProbeInterval: 10 * time.Millisecond,
		Breaker:       shard.BreakerConfig{FailThreshold: 1, OpenBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	})
	primary := f.set.Primary("HA8K").Name
	hs := f.servers[primary]
	addr := hs.Listener.Addr().String()
	hs.CloseClientConnections()
	hs.Close()

	// Trip the primary's breaker with a failing solve (answered by the
	// secondary) and let probes observe the death.
	if _, status, _ := f.solve(t); status != http.StatusOK {
		t.Fatalf("failover solve = %d", status)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := f.shardStatus(t, primary); !st.Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probes never marked the dead primary unhealthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart a healthy shard on the same address.
	svc, err := service.New(service.Config{Systems: []string{"HA8K", "Cab"}, Modules: 16, Seed: 0x5c15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	revived := &http.Server{Handler: svc.Handler()}
	ln, err := listenOn(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go func() { _ = revived.Serve(ln) }()
	t.Cleanup(func() { _ = revived.Shutdown(context.Background()) })

	for {
		st := f.shardStatus(t, primary)
		if st.Healthy && st.Breaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probes never recovered the revived primary: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, status, shardName := f.solve(t); status != http.StatusOK || shardName != primary {
		t.Fatalf("post-recovery solve = %d from %q, want 200 from %q", status, shardName, primary)
	}
}

// listenOn binds a TCP listener to an exact address (for reviving a shard
// where the dead one lived).
func listenOn(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// shardStatus reads one row of /v1/shards.
func (f *fleet) shardStatus(t *testing.T, name string) shard.ShardStatus {
	t.Helper()
	resp, err := http.Get(f.front.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Shards []shard.ShardStatus `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, st := range out.Shards {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("shard %q missing from /v1/shards", name)
	return shard.ShardStatus{}
}

// TestRouterMergedSystems: /v1/systems through the router lists each
// system once even though both shards serve it.
func TestRouterMergedSystems(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{})
	resp, err := http.Get(f.front.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Systems []struct {
			Name string `json:"name"`
		} `json:"systems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, s := range out.Systems {
		seen[s.Name]++
	}
	if seen["HA8K"] != 1 || seen["Cab"] != 1 {
		t.Fatalf("merged systems = %v, want each exactly once", seen)
	}
}

// TestRouterJobStickiness: a job submitted through the router must be
// pollable through the router, landing on the shard that minted the ID.
func TestRouterJobStickiness(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{})
	body := `{"system":"Cab","workload":"dgemm","scheme":"vapc","budget_watts":2400}`
	resp, err := http.Post(f.front.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	submitShard := resp.Header.Get("X-Varpower-Shard")
	var job struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &job); err != nil || job.ID == "" {
		t.Fatalf("job body %s: %v", b, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(f.front.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d: %s", resp.StatusCode, pb)
		}
		if got := resp.Header.Get("X-Varpower-Shard"); got != submitShard {
			t.Fatalf("poll answered by %q, submit by %q", got, submitShard)
		}
		var st struct {
			State string `json:"state"`
		}
		_ = json.Unmarshal(pb, &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled: %s", pb)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRouterRejectsBodyWithoutSystem(t *testing.T) {
	f := newFleet(t, shard.RouterConfig{})
	resp, err := http.Post(f.front.URL+"/v1/solve", "application/json", strings.NewReader(`{"workload":"dgemm"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
