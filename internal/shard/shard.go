// Package shard is varpowerd's horizontal story: a static set of shard
// processes, each owning a subset of the system presets, fronted by a
// router that proxies control-plane requests to the owner and fails over
// to a designated secondary when the owner dies.
//
// Ownership is rendezvous (highest-random-weight) hashing: every
// (system, shard) pair hashes to a weight, and a system's shards ranked by
// descending weight give its primary (rank 0), its secondary (rank 1), and
// so on. Rendezvous keeps two properties the failover design leans on:
// every router computes the same ranking with no coordination, and
// removing one shard reassigns only that shard's systems — everyone else's
// ownership is untouched.
//
// The shard set is static configuration (the same -shard-set string on
// every process), which is deliberate: varpower's fleet is a handful of
// shards owning four system presets, not a dynamic membership problem.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"varpower/internal/xrand"
)

// Member is one shard process: a stable name (the hash identity — renaming
// a shard reassigns its systems, changing its address does not) and the
// base URL it serves on.
type Member struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Set is an ordered shard set. The order is presentation only; ownership
// depends on names alone.
type Set struct {
	members []Member
	byName  map[string]Member
}

// ParseSet parses a shard-set flag: comma-separated "name=addr" entries
// ("a=http://127.0.0.1:7071,b=http://127.0.0.1:7072"). A bare addr gets a
// positional name ("s0", "s1", ...) — fine for ad-hoc fleets, but explicit
// names are what keep ownership stable across config edits.
func ParseSet(spec string) (*Set, error) {
	s := &Set{byName: make(map[string]Member)}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var m Member
		if name, addr, ok := strings.Cut(part, "="); ok {
			m = Member{Name: strings.TrimSpace(name), Addr: strings.TrimSpace(addr)}
		} else {
			m = Member{Name: fmt.Sprintf("s%d", i), Addr: part}
		}
		if m.Name == "" || m.Addr == "" {
			return nil, fmt.Errorf("shard: bad member %q (want name=addr)", part)
		}
		if !strings.Contains(m.Addr, "://") {
			m.Addr = "http://" + m.Addr
		}
		m.Addr = strings.TrimRight(m.Addr, "/")
		if _, dup := s.byName[m.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate member name %q", m.Name)
		}
		s.members = append(s.members, m)
		s.byName[m.Name] = m
	}
	if len(s.members) == 0 {
		return nil, fmt.Errorf("shard: empty shard set")
	}
	return s, nil
}

// Members returns the set in declaration order.
func (s *Set) Members() []Member { return s.members }

// Len returns the member count.
func (s *Set) Len() int { return len(s.members) }

// Lookup finds a member by name.
func (s *Set) Lookup(name string) (Member, bool) {
	m, ok := s.byName[name]
	return m, ok
}

// weight is the rendezvous score of (key, member): FNV-1a over the joined
// identity. Deterministic across processes by construction — no seeds, no
// clock, nothing process-local.
func weight(key, member string) uint64 {
	return xrand.HashString(strings.ToLower(key) + "\x00" + member)
}

// RankFor returns the members ranked for key: descending rendezvous
// weight, names breaking (astronomically unlikely) ties. ranked[0] is the
// primary owner, ranked[1] the failover secondary.
func (s *Set) RankFor(key string) []Member {
	ranked := append([]Member{}, s.members...)
	sort.Slice(ranked, func(i, j int) bool {
		wi, wj := weight(key, ranked[i].Name), weight(key, ranked[j].Name)
		if wi != wj {
			return wi > wj
		}
		return ranked[i].Name < ranked[j].Name
	})
	return ranked
}

// Primary returns key's owning member.
func (s *Set) Primary(key string) Member { return s.RankFor(key)[0] }

// Secondary returns key's designated failover member (false for a
// single-member set).
func (s *Set) Secondary(key string) (Member, bool) {
	r := s.RankFor(key)
	if len(r) < 2 {
		return Member{}, false
	}
	return r[1], true
}

// Assign splits systems for the shard named self: eager systems are the
// ones self primarily owns (built and calibrated at boot); lazy systems
// are the ones self is secondary for (registered, but materialised only if
// the router ever fails over to self — then preferentially from the
// primary's snapshot). Unknown self returns everything lazy, which is a
// safe posture for a spare.
func Assign(s *Set, self string, systems []string) (eager, lazy []string) {
	for _, sys := range systems {
		ranked := s.RankFor(sys)
		switch {
		case ranked[0].Name == self:
			eager = append(eager, sys)
		case len(ranked) > 1 && ranked[1].Name == self:
			lazy = append(lazy, sys)
		}
	}
	return eager, lazy
}
