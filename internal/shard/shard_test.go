package shard

import (
	"reflect"
	"testing"
)

func TestParseSet(t *testing.T) {
	s, err := ParseSet("a=http://127.0.0.1:7071, b=127.0.0.1:7072/ ,")
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	want := []Member{
		{Name: "a", Addr: "http://127.0.0.1:7071"},
		{Name: "b", Addr: "http://127.0.0.1:7072"},
	}
	if !reflect.DeepEqual(s.Members(), want) {
		t.Fatalf("members = %+v, want %+v", s.Members(), want)
	}
	if m, ok := s.Lookup("b"); !ok || m.Addr != "http://127.0.0.1:7072" {
		t.Fatalf("Lookup(b) = %+v, %v", m, ok)
	}
}

func TestParseSetBareAddrsGetPositionalNames(t *testing.T) {
	s, err := ParseSet("127.0.0.1:7071,127.0.0.1:7072")
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if s.Members()[0].Name != "s0" || s.Members()[1].Name != "s1" {
		t.Fatalf("positional names wrong: %+v", s.Members())
	}
}

func TestParseSetRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", " , ", "a=,b=x", "=addr", "a=x,a=y"} {
		if _, err := ParseSet(spec); err == nil {
			t.Errorf("ParseSet(%q) accepted, want error", spec)
		}
	}
}

// TestRankForDeterministic: two independently parsed sets (different
// declaration order) must agree on every ranking — the property the
// router/shard split depends on, since each process computes ownership
// alone.
func TestRankForDeterministic(t *testing.T) {
	s1, _ := ParseSet("a=h:1,b=h:2,c=h:3")
	s2, _ := ParseSet("c=h:3,a=h:1,b=h:2")
	for _, sys := range []string{"HA8K", "Cab", "BG/Q Vulcan", "Teller"} {
		r1, r2 := s1.RankFor(sys), s2.RankFor(sys)
		for i := range r1 {
			if r1[i].Name != r2[i].Name {
				t.Fatalf("ranking for %q differs by declaration order: %v vs %v", sys, r1, r2)
			}
		}
	}
}

// TestRankForCaseInsensitiveKey: clients may spell a system "ha8k" or
// "HA8K"; both must route to the same shard.
func TestRankForCaseInsensitiveKey(t *testing.T) {
	s, _ := ParseSet("a=h:1,b=h:2,c=h:3")
	if s.Primary("HA8K").Name != s.Primary("ha8k").Name {
		t.Fatal("system-name case changed the owner")
	}
}

// TestRankForMinimalReassignment: removing one member must only reassign
// the systems that member owned — rendezvous hashing's defining property.
func TestRankForMinimalReassignment(t *testing.T) {
	full, _ := ParseSet("a=h:1,b=h:2,c=h:3")
	systems := []string{"HA8K", "Cab", "BG/Q Vulcan", "Teller"}
	for _, removed := range []string{"a", "b", "c"} {
		spec := ""
		for _, m := range full.Members() {
			if m.Name != removed {
				spec += m.Name + "=" + m.Addr + ","
			}
		}
		reduced, err := ParseSet(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range systems {
			before := full.Primary(sys)
			after := reduced.Primary(sys)
			if before.Name != removed && after.Name != before.Name {
				t.Errorf("removing %q moved %q from %q to %q (should be untouched)",
					removed, sys, before.Name, after.Name)
			}
		}
	}
}

func TestSecondaryDiffersFromPrimary(t *testing.T) {
	s, _ := ParseSet("a=h:1,b=h:2,c=h:3")
	for _, sys := range []string{"HA8K", "Cab", "BG/Q Vulcan", "Teller"} {
		sec, ok := s.Secondary(sys)
		if !ok {
			t.Fatalf("no secondary for %q", sys)
		}
		if sec.Name == s.Primary(sys).Name {
			t.Fatalf("secondary == primary for %q", sys)
		}
	}
	single, _ := ParseSet("a=h:1")
	if _, ok := single.Secondary("HA8K"); ok {
		t.Fatal("single-member set reported a secondary")
	}
}

// TestAssignPartition: across all shards, every system appears exactly
// once as eager (its primary) and exactly once as lazy (its secondary).
func TestAssignPartition(t *testing.T) {
	s, _ := ParseSet("a=h:1,b=h:2,c=h:3")
	systems := []string{"HA8K", "Cab", "BG/Q Vulcan", "Teller"}
	eagerCount := map[string]int{}
	lazyCount := map[string]int{}
	for _, m := range s.Members() {
		eager, lazy := Assign(s, m.Name, systems)
		for _, sys := range eager {
			eagerCount[sys]++
			if s.Primary(sys).Name != m.Name {
				t.Errorf("%q eager on %q but not its primary", sys, m.Name)
			}
		}
		for _, sys := range lazy {
			lazyCount[sys]++
			sec, _ := s.Secondary(sys)
			if sec.Name != m.Name {
				t.Errorf("%q lazy on %q but not its secondary", sys, m.Name)
			}
		}
	}
	for _, sys := range systems {
		if eagerCount[sys] != 1 || lazyCount[sys] != 1 {
			t.Errorf("%q: eager on %d shards, lazy on %d; want 1 and 1",
				sys, eagerCount[sys], lazyCount[sys])
		}
	}
	// An unknown self is a spare: nothing eager.
	eager, _ := Assign(s, "nobody", systems)
	if len(eager) != 0 {
		t.Fatalf("unknown shard owns %v", eager)
	}
}
