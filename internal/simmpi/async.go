// Async engine: a general discrete-event simulator for message-passing
// programs that are NOT bulk-synchronous SPMD — master/worker farms,
// pipelines, asymmetric protocols. The lockstep engine in simmpi.go is
// exact and fast for the paper's SPMD benchmarks; this engine removes the
// same-op-kind-per-round restriction by simulating tagged point-to-point
// messages with MPI-style (source, tag) matching and rendezvous timing.
//
// Semantics:
//
//   - Send(dst, tag, bytes) completes locally after the wire time
//     (buffered eager send); the message becomes available to the receiver
//     no earlier than the sender's completion time.
//   - Recv(src, tag) blocks until a matching message exists and its
//     arrival time has passed. src may be AnySource.
//   - Compute advances local time.
//
// The engine runs each rank's op stream until it blocks, delivering
// messages in (time, sender, sequence) order; deadlock (every unfinished
// rank blocked with no deliverable message) is detected and reported.
package simmpi

import (
	"fmt"
	"sort"

	"varpower/internal/units"
)

// AnySource matches a receive against any sender (MPI_ANY_SOURCE).
const AnySource = -1

// Send is an asynchronous tagged message to Dst.
type Send struct {
	Dst   int
	Tag   int
	Bytes float64
}

// Recv blocks until a message with matching source and tag arrives. Src
// may be AnySource.
type Recv struct {
	Src int
	Tag int
}

func (Send) isOp() {}
func (Recv) isOp() {}

// AsyncProgram supplies each rank's op stream. Unlike Program, streams may
// differ arbitrarily between ranks.
type AsyncProgram interface {
	// Ops returns rank's complete operation sequence.
	Ops(rank int) []Op
}

// AsyncProgramFunc adapts a function to AsyncProgram.
type AsyncProgramFunc func(rank int) []Op

// Ops implements AsyncProgram.
func (f AsyncProgramFunc) Ops(rank int) []Op { return f(rank) }

// message is an in-flight or queued message.
type message struct {
	src, dst, tag int
	bytes         float64
	// available is when the receiver may consume it.
	available units.Seconds
	seq       int
}

// asyncRank is one rank's execution state.
type asyncRank struct {
	ops  []Op
	pc   int
	now  units.Seconds
	busy units.Seconds
	wait units.Seconds
	xfer units.Seconds
}

// RunAsync executes the program on size ranks. It returns per-rank stats
// compatible with the lockstep engine's Result.
func RunAsync(p AsyncProgram, size int, m Model, net Network) (Result, error) {
	return RunAsyncProbed(p, size, m, net, nil)
}

// RunAsyncProbed is RunAsync with an observation probe (see Probe). The
// reported round is the rank's op index, so slices from different ranks
// line up only by time, not by round — async programs have no global
// rounds. A Recv wait on a reserved collective tag (>= CollectiveTagBase,
// i.e. inside a lowered collective) is classified as collective-wait,
// anything else as p2p-wait. The engine's round-robin scheduling is
// deterministic, so probe call order is too.
func RunAsyncProbed(p AsyncProgram, size int, m Model, net Network, probe Probe) (Result, error) {
	if size < 1 {
		return Result{}, fmt.Errorf("simmpi: async size %d < 1", size)
	}
	ranks := make([]asyncRank, size)
	for r := range ranks {
		ranks[r].ops = p.Ops(r)
	}
	// Mailboxes: per destination, the queue of sent messages in arrival
	// order (stable by sequence to preserve MPI's non-overtaking rule per
	// sender).
	mail := make([][]message, size)
	seq := 0

	// advance runs one rank until it blocks or finishes; returns whether
	// it made progress.
	advance := func(r int) (bool, error) {
		rk := &ranks[r]
		progressed := false
		for rk.pc < len(rk.ops) {
			switch op := rk.ops[rk.pc].(type) {
			case Compute:
				dt := m.ComputeTime(r, op.Cycles, op.Bytes)
				if dt < 0 {
					return false, fmt.Errorf("simmpi: negative compute time at rank %d", r)
				}
				if probe != nil && dt > 0 {
					probe.Interval(r, rk.pc, ProbeCompute, rk.now, rk.now+dt)
				}
				rk.now += dt
				rk.busy += dt
			case Send:
				if op.Dst < 0 || op.Dst >= size {
					return false, fmt.Errorf("simmpi: rank %d sends to %d outside [0,%d)", r, op.Dst, size)
				}
				cost := net.transfer(op.Bytes)
				if probe != nil && cost > 0 {
					probe.Interval(r, rk.pc, ProbeXfer, rk.now, rk.now+cost)
				}
				rk.now += cost
				rk.xfer += cost
				mail[op.Dst] = append(mail[op.Dst], message{
					src: r, dst: op.Dst, tag: op.Tag, bytes: op.Bytes,
					available: rk.now, seq: seq,
				})
				seq++
			case Recv:
				idx := matchMessage(mail[r], op)
				if idx < 0 {
					return progressed, nil // blocked
				}
				msg := mail[r][idx]
				mail[r] = append(mail[r][:idx], mail[r][idx+1:]...)
				if msg.available > rk.now {
					if probe != nil {
						phase := ProbeP2PWait
						if op.Tag >= CollectiveTagBase {
							phase = ProbeCollectiveWait
						}
						probe.Interval(r, rk.pc, phase, rk.now, msg.available)
					}
					rk.wait += msg.available - rk.now
					rk.now = msg.available
				}
			case Barrier, Allreduce, Sendrecv:
				return false, fmt.Errorf("simmpi: collective op %T not supported by the async engine; use Run", op)
			default:
				return false, fmt.Errorf("simmpi: unknown op %T at rank %d", op, r)
			}
			rk.pc++
			progressed = true
		}
		return progressed, nil
	}

	// Round-robin until quiescent; since every advance() runs a rank as
	// far as possible, a full pass with no progress and unfinished ranks
	// is a deadlock.
	for {
		progressed := false
		done := 0
		for r := 0; r < size; r++ {
			if ranks[r].pc >= len(ranks[r].ops) {
				done++
				continue
			}
			p, err := advance(r)
			if err != nil {
				return Result{}, err
			}
			if p {
				progressed = true
			}
			if ranks[r].pc >= len(ranks[r].ops) {
				done++
			}
		}
		if done == size {
			break
		}
		if !progressed {
			return Result{}, deadlockError(ranks)
		}
	}

	res := Result{Ranks: make([]RankStats, size)}
	for r := range ranks {
		res.Ranks[r] = RankStats{
			End:  ranks[r].now,
			Busy: ranks[r].busy,
			Wait: ranks[r].wait,
			Xfer: ranks[r].xfer,
		}
		if ranks[r].now > res.Elapsed {
			res.Elapsed = ranks[r].now
		}
	}
	return res, nil
}

// matchMessage finds the first queued message matching the receive,
// honouring per-sender ordering: among candidates, the lowest sequence
// number wins.
func matchMessage(queue []message, op Recv) int {
	best := -1
	for i, msg := range queue {
		if op.Src != AnySource && msg.src != op.Src {
			continue
		}
		if msg.tag != op.Tag {
			continue
		}
		if best < 0 || msg.seq < queue[best].seq {
			best = i
		}
	}
	return best
}

func deadlockError(ranks []asyncRank) error {
	var blocked []int
	for r := range ranks {
		if ranks[r].pc < len(ranks[r].ops) {
			blocked = append(blocked, r)
		}
	}
	sort.Ints(blocked)
	return fmt.Errorf("simmpi: deadlock — ranks %v blocked in Recv with no matching message", blocked)
}
