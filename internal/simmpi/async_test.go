package simmpi

import (
	"math"
	"strings"
	"testing"

	"varpower/internal/units"
)

func asyncProgram(ops ...[]Op) AsyncProgram {
	return AsyncProgramFunc(func(rank int) []Op { return ops[rank] })
}

func TestAsyncPingPong(t *testing.T) {
	net := Network{Latency: 1, Bandwidth: 1e12}
	p := asyncProgram(
		[]Op{Send{Dst: 1, Tag: 0, Bytes: 8}, Recv{Src: 1, Tag: 1}},
		[]Op{Recv{Src: 0, Tag: 0}, Send{Dst: 0, Tag: 1, Bytes: 8}},
	)
	res, err := RunAsync(p, 2, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0: send completes at 1; rank 1 receives at 1, sends back
	// completing at 2; rank 0 receives at 2.
	if math.Abs(float64(res.Ranks[0].End)-2) > 1e-9 {
		t.Fatalf("rank 0 end %v, want 2", res.Ranks[0].End)
	}
	if math.Abs(float64(res.Ranks[1].Wait)-1) > 1e-6 {
		t.Fatalf("rank 1 wait %v, want ≈ 1 (blocked until the first send lands)", res.Ranks[1].Wait)
	}
}

func TestAsyncMasterWorker(t *testing.T) {
	// A farm: master sends one task to each of three workers, collects
	// results. Workers have unequal compute times; the master's total time
	// is bounded by the slowest worker.
	const workers = 3
	master := []Op{}
	for w := 1; w <= workers; w++ {
		master = append(master, Send{Dst: w, Tag: 1, Bytes: 100})
	}
	for w := 1; w <= workers; w++ {
		master = append(master, Recv{Src: AnySource, Tag: 2})
	}
	prog := AsyncProgramFunc(func(rank int) []Op {
		if rank == 0 {
			return master
		}
		return []Op{
			Recv{Src: 0, Tag: 1},
			Compute{Cycles: float64(rank) * 5}, // worker w takes 5w seconds
			Send{Dst: 0, Tag: 2, Bytes: 10},
		}
	})
	res, err := RunAsync(prog, workers+1, unitModel(), Network{Latency: 0.001, Bandwidth: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	// The slowest worker computes 15 s; master must end just after.
	if res.Elapsed < 15 || res.Elapsed > 16 {
		t.Fatalf("elapsed %v, want ≈ 15", res.Elapsed)
	}
	if res.Ranks[0].Wait < 14 {
		t.Fatalf("master wait %v, want ≈ 15 (idle while workers compute)", res.Ranks[0].Wait)
	}
}

func TestAsyncNonOvertaking(t *testing.T) {
	// Two messages with the same tag from one sender must be received in
	// send order (MPI's non-overtaking rule).
	p := asyncProgram(
		[]Op{
			Compute{Cycles: 1},
			Send{Dst: 1, Tag: 0, Bytes: 1e12}, // large: slow wire, arrives late
			Send{Dst: 1, Tag: 0, Bytes: 1},    // small: would overtake if allowed
		},
		[]Op{Recv{Src: 0, Tag: 0}, Recv{Src: 0, Tag: 0}},
	)
	net := Network{Latency: 0.001, Bandwidth: 1e12}
	res, err := RunAsync(p, 2, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	// If the rule held, the receiver's first receive waits for the big
	// message; total receiver time ≥ the big transfer's completion.
	if res.Ranks[1].End < 1 {
		t.Fatalf("receiver finished at %v before the first (slow) message landed", res.Ranks[1].End)
	}
}

func TestAsyncAnySource(t *testing.T) {
	p := asyncProgram(
		[]Op{Recv{Src: AnySource, Tag: 7}, Recv{Src: AnySource, Tag: 7}},
		[]Op{Compute{Cycles: 3}, Send{Dst: 0, Tag: 7, Bytes: 1}},
		[]Op{Compute{Cycles: 1}, Send{Dst: 0, Tag: 7, Bytes: 1}},
	)
	res, err := RunAsync(p, 3, unitModel(), Network{Latency: 0.001, Bandwidth: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 consumes whichever arrives; it ends with the later sender.
	if res.Ranks[0].End < 3 {
		t.Fatalf("rank 0 ended %v before the slower sender finished", res.Ranks[0].End)
	}
}

func TestAsyncDeadlockDetected(t *testing.T) {
	p := asyncProgram(
		[]Op{Recv{Src: 1, Tag: 0}},
		[]Op{Recv{Src: 0, Tag: 0}},
	)
	_, err := RunAsync(p, 2, unitModel(), zeroNet())
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestAsyncTagMismatchDeadlocks(t *testing.T) {
	p := asyncProgram(
		[]Op{Send{Dst: 1, Tag: 5, Bytes: 1}, Recv{Src: 1, Tag: 5}},
		[]Op{Recv{Src: 0, Tag: 6}},
	)
	if _, err := RunAsync(p, 2, unitModel(), zeroNet()); err == nil {
		t.Fatal("tag mismatch should deadlock")
	}
}

func TestAsyncRejectsCollectives(t *testing.T) {
	p := asyncProgram([]Op{Barrier{}})
	if _, err := RunAsync(p, 1, unitModel(), zeroNet()); err == nil {
		t.Fatal("collective accepted by the async engine")
	}
}

func TestAsyncValidation(t *testing.T) {
	if _, err := RunAsync(asyncProgram([]Op{}), 0, unitModel(), zeroNet()); err == nil {
		t.Fatal("zero ranks accepted")
	}
	p := asyncProgram([]Op{Send{Dst: 9, Tag: 0}})
	if _, err := RunAsync(p, 1, unitModel(), zeroNet()); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	bad := ModelFunc(func(int, float64, float64) units.Seconds { return -1 })
	p = asyncProgram([]Op{Compute{Cycles: 1}})
	if _, err := RunAsync(p, 1, bad, zeroNet()); err == nil {
		t.Fatal("negative compute time accepted")
	}
}

func TestAsyncMatchesLockstepOnSPMDChain(t *testing.T) {
	// A two-rank compute/exchange chain expressed both ways must agree on
	// end times (Sendrecv == paired Send+Recv at zero latency asymmetry).
	net := Network{Latency: 0.5, Bandwidth: 1e12}
	lock := sliceProgram{ops: [][]Op{
		{Compute{Cycles: 4}, Sendrecv{Peers: []int{1}, Bytes: 1}},
		{Compute{Cycles: 2}, Sendrecv{Peers: []int{0}, Bytes: 1}},
	}}
	lockRes, err := Run(lock, 2, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	async := asyncProgram(
		[]Op{Compute{Cycles: 4}, Send{Dst: 1, Tag: 0, Bytes: 1}, Recv{Src: 1, Tag: 0}},
		[]Op{Compute{Cycles: 2}, Send{Dst: 0, Tag: 0, Bytes: 1}, Recv{Src: 0, Tag: 0}},
	)
	asyncRes, err := RunAsync(async, 2, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	// Both models: slow rank dominates; end ≈ max(compute) + wire.
	for r := 0; r < 2; r++ {
		if math.Abs(float64(lockRes.Ranks[r].End-asyncRes.Ranks[r].End)) > 0.51 {
			t.Fatalf("rank %d: lockstep %v vs async %v", r, lockRes.Ranks[r].End, asyncRes.Ranks[r].End)
		}
	}
}
