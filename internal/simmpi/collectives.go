package simmpi

// Collective lowering for the async engine: the lockstep engine treats
// Barrier and Allreduce as primitives, but an asymmetric program running
// under RunAsync must express them as point-to-point messages, exactly as
// MPI implementations do. LowerAllreduce and LowerBarrier emit each rank's
// share of a binomial-tree reduce followed by a broadcast — O(log n)
// rounds, matching the lockstep engine's collectiveCost model — on a
// reserved tag.

// Collective tags: user programs should avoid tags at or above
// CollectiveTagBase.
const (
	// CollectiveTagBase is the first tag reserved for lowered collectives.
	CollectiveTagBase = 1 << 20
	reduceTag         = CollectiveTagBase
	bcastTag          = CollectiveTagBase + 1
)

// LowerAllreduce returns rank's op sequence for an allreduce of the given
// payload across size ranks rooted at rank 0: a binomial-tree reduction up
// to the root followed by a binomial-tree broadcast down. Appending the
// returned ops at the same logical point in every rank's program
// implements the collective.
func LowerAllreduce(rank, size int, bytes float64) []Op {
	if size <= 1 {
		return nil
	}
	var ops []Op
	// Reduce: at round k (mask = 1<<k), ranks with the mask bit set send
	// their partial to rank^mask and leave the reduction; ranks without it
	// receive from rank|mask if that peer exists.
	for mask := 1; mask < size; mask <<= 1 {
		if rank&(mask-1) != 0 {
			continue // already left the reduction in an earlier round
		}
		if rank&mask != 0 {
			ops = append(ops, Send{Dst: rank &^ mask, Tag: reduceTag, Bytes: bytes})
		} else if peer := rank | mask; peer < size {
			ops = append(ops, Recv{Src: peer, Tag: reduceTag})
		}
	}
	// Broadcast: mirror image, from the root back down.
	for mask := highestPow2Below(size); mask >= 1; mask >>= 1 {
		if rank&(mask-1) != 0 {
			continue
		}
		if rank&mask != 0 {
			ops = append(ops, Recv{Src: rank &^ mask, Tag: bcastTag})
		} else if peer := rank | mask; peer < size {
			ops = append(ops, Send{Dst: peer, Tag: bcastTag, Bytes: bytes})
		}
	}
	return ops
}

// LowerBarrier returns rank's op sequence for a barrier: an allreduce of a
// zero-byte payload.
func LowerBarrier(rank, size int) []Op {
	return LowerAllreduce(rank, size, 0)
}

// highestPow2Below returns the largest power of two strictly below n
// (n ≥ 2).
func highestPow2Below(n int) int {
	p := 1
	for p<<1 < n {
		p <<= 1
	}
	return p
}
