package simmpi

import (
	"math"
	"testing"
)

// lowerProgram builds a per-rank program: a rank-dependent compute phase
// followed by a lowered collective.
func lowerProgram(size int, compute func(rank int) float64, collective func(rank int) []Op) AsyncProgram {
	return AsyncProgramFunc(func(rank int) []Op {
		ops := []Op{Compute{Cycles: compute(rank)}}
		return append(ops, collective(rank)...)
	})
}

func TestLoweredBarrierSynchronizes(t *testing.T) {
	for _, size := range []int{2, 3, 4, 7, 8, 16, 33} {
		p := lowerProgram(size,
			func(rank int) float64 { return float64(rank + 1) },
			func(rank int) []Op { return LowerBarrier(rank, size) },
		)
		res, err := RunAsync(p, size, unitModel(), Network{Latency: 1e-6, Bandwidth: 1e12})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		// After the barrier every rank's end time is at least the slowest
		// rank's compute time.
		slowest := float64(size)
		for r, st := range res.Ranks {
			if float64(st.End) < slowest {
				t.Fatalf("size %d: rank %d ended at %v before the slowest compute (%v)",
					size, r, st.End, slowest)
			}
			// And nobody is far beyond it: the tree costs log2(n) hops.
			if float64(st.End) > slowest+1e-3 {
				t.Fatalf("size %d: rank %d ended at %v, way past the barrier", size, r, st.End)
			}
		}
	}
}

func TestLoweredAllreduceMatchesLockstepCost(t *testing.T) {
	// With equal compute, the lowered allreduce's latency must be within a
	// small factor of the lockstep engine's analytic tree cost.
	const size = 16
	net := Network{Latency: 0.001, Bandwidth: 1e12}
	lock := sliceProgram{ops: func() [][]Op {
		ops := make([][]Op, size)
		for r := range ops {
			ops[r] = []Op{Allreduce{Bytes: 8}}
		}
		return ops
	}()}
	lockRes, err := Run(lock, size, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	async := lowerProgram(size,
		func(int) float64 { return 0 },
		func(rank int) []Op { return LowerAllreduce(rank, size, 8) },
	)
	asyncRes, err := RunAsync(async, size, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(asyncRes.Elapsed) / float64(lockRes.Elapsed)
	// Reduce+broadcast is 2× the one-way tree depth.
	if ratio < 1 || ratio > 2.5 {
		t.Fatalf("lowered allreduce cost %v vs lockstep %v (ratio %v)",
			asyncRes.Elapsed, lockRes.Elapsed, ratio)
	}
}

func TestLoweredCollectiveSingleRank(t *testing.T) {
	if ops := LowerAllreduce(0, 1, 8); ops != nil {
		t.Fatalf("single-rank allreduce should be empty, got %v", ops)
	}
}

func TestLoweredOpsAreBalanced(t *testing.T) {
	// Across all ranks, sends and receives must pair up exactly.
	for _, size := range []int{2, 5, 8, 13, 64} {
		sends, recvs := 0, 0
		for r := 0; r < size; r++ {
			for _, op := range LowerAllreduce(r, size, 4) {
				switch op.(type) {
				case Send:
					sends++
				case Recv:
					recvs++
				}
			}
		}
		if sends != recvs {
			t.Fatalf("size %d: %d sends vs %d recvs", size, sends, recvs)
		}
		// A tree visits every non-root rank once in each direction.
		if sends != 2*(size-1) {
			t.Fatalf("size %d: %d messages, want %d", size, sends, 2*(size-1))
		}
	}
}

func TestLoweredAllreducePropagatesSlowest(t *testing.T) {
	// The defining property: after the collective, everyone has waited for
	// the slowest participant — the mechanism behind the paper's Figure 3.
	const size = 8
	slowRank := 5
	p := lowerProgram(size,
		func(rank int) float64 {
			if rank == slowRank {
				return 20
			}
			return 1
		},
		func(rank int) []Op { return LowerAllreduce(rank, size, 8) },
	)
	res, err := RunAsync(p, size, unitModel(), Network{Latency: 1e-5, Bandwidth: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range res.Ranks {
		if float64(st.End) < 20 {
			t.Fatalf("rank %d finished at %v, before the slow rank", r, st.End)
		}
		if r != slowRank && float64(st.Wait) < 18 {
			t.Fatalf("rank %d waited only %v for the slow rank", r, st.Wait)
		}
	}
	if math.Abs(float64(res.Ranks[slowRank].Wait)) > 0.01 {
		t.Fatalf("slow rank waited %v, want ≈ 0", res.Ranks[slowRank].Wait)
	}
}
