package simmpi

import (
	"reflect"
	"testing"

	"varpower/internal/units"
)

// ringProgram builds a compute/sendrecv/allreduce loop like the MHD kernel:
// enough communication structure that a dead rank would deadlock a naive
// engine.
func ringProgram(size, iters int, cycles float64) sliceProgram {
	ops := make([][]Op, size)
	for rank := range ops {
		left := (rank - 1 + size) % size
		right := (rank + 1) % size
		for i := 0; i < iters; i++ {
			ops[rank] = append(ops[rank],
				Compute{Cycles: cycles},
				Sendrecv{Peers: []int{left, right}, Bytes: 1024},
				Allreduce{Bytes: 64},
			)
		}
	}
	return sliceProgram{ops: ops}
}

func TestRunFaultyNilSpecMatchesRun(t *testing.T) {
	p := ringProgram(6, 8, 3)
	want, err := Run(p, 6, unitModel(), zeroNet())
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFaulty(p, 6, unitModel(), zeroNet(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("nil FaultSpec diverged from Run:\n%+v\n%+v", want, got)
	}
	// A spec with no deaths must also be value-identical: the timeout only
	// matters once somebody dies.
	got, err = RunFaulty(p, 6, unitModel(), zeroNet(), nil, &FaultSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("deathless FaultSpec diverged from Run:\n%+v\n%+v", want, got)
	}
}

func TestRunFaultyDeadRankFinishesDegraded(t *testing.T) {
	const size = 6
	p := ringProgram(size, 10, 3)
	healthy, err := Run(p, size, unitModel(), zeroNet())
	if err != nil {
		t.Fatal(err)
	}

	deadAt := make([]units.Seconds, size)
	for i := range deadAt {
		deadAt[i] = -1
	}
	deadAt[2] = 10 // mid-run: each iteration is >= 3 s of compute
	res, err := RunFaulty(p, size, unitModel(), zeroNet(), nil, &FaultSpec{DeadAt: deadAt})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Ranks[2].Dead {
		t.Fatal("rank 2 not marked dead")
	}
	for rank, st := range res.Ranks {
		if rank != 2 && st.Dead {
			t.Fatalf("rank %d wrongly marked dead", rank)
		}
	}
	// The dead rank stopped early; its busy time is bounded by its death.
	if res.Ranks[2].End < 10 || res.Ranks[2].Busy > 11 {
		t.Fatalf("dead rank stats %+v", res.Ranks[2])
	}
	// Survivors finish — later than the healthy run (they pay detection
	// timeouts) but within rounds × timeout of it, proving no deadlock and
	// no unbounded stall.
	if res.Elapsed <= healthy.Elapsed {
		t.Fatalf("degraded run not slower: %v vs healthy %v", res.Elapsed, healthy.Elapsed)
	}
	bound := healthy.Elapsed + units.Seconds(float64(p.Rounds()))*DefaultDeadTimeout
	if res.Elapsed > bound {
		t.Fatalf("degraded run %v exceeds timeout bound %v", res.Elapsed, bound)
	}
	// Elapsed tracks the slowest survivor, not the dead rank.
	var slowest units.Seconds
	for rank, st := range res.Ranks {
		if rank != 2 && st.End > slowest {
			slowest = st.End
		}
	}
	if res.Elapsed != slowest {
		t.Fatalf("elapsed %v, slowest survivor %v", res.Elapsed, slowest)
	}
}

func TestRunFaultyDeathAtZeroAndAllDead(t *testing.T) {
	const size = 4
	p := ringProgram(size, 5, 2)
	// A rank dead from t=0 participates in nothing.
	deadAt := []units.Seconds{0, -1, -1, -1}
	res, err := RunFaulty(p, size, unitModel(), zeroNet(), nil, &FaultSpec{DeadAt: deadAt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ranks[0].Dead || res.Ranks[0].Busy != 0 {
		t.Fatalf("rank dead at 0 still computed: %+v", res.Ranks[0])
	}
	if res.Elapsed <= 0 {
		t.Fatal("survivors made no progress")
	}

	// Everyone dead: the run still terminates (elapsed = latest death
	// processing point, no survivors to wait on).
	all := []units.Seconds{0, 1, 2, 3}
	res, err = RunFaulty(p, size, unitModel(), zeroNet(), nil, &FaultSpec{DeadAt: all})
	if err != nil {
		t.Fatal(err)
	}
	for rank, st := range res.Ranks {
		if !st.Dead {
			t.Fatalf("rank %d survived a total-death plan", rank)
		}
	}
}

func TestRunFaultyRejectsBadSpec(t *testing.T) {
	p := ringProgram(4, 2, 1)
	_, err := RunFaulty(p, 4, unitModel(), zeroNet(), nil, &FaultSpec{DeadAt: []units.Seconds{1}})
	if err == nil {
		t.Fatal("mismatched DeadAt length accepted")
	}
}

func TestRunFaultySendrecvTimeoutSemantics(t *testing.T) {
	// Two live ranks exchanging with a dead third: each waits its own
	// arrival + timeout, then proceeds.
	ops := [][]Op{
		{Compute{Cycles: 1}, Sendrecv{Peers: []int{2}}},
		{Compute{Cycles: 2}, Sendrecv{Peers: []int{2}}},
		{Compute{Cycles: 5}, Sendrecv{Peers: []int{0, 1}}},
	}
	deadAt := []units.Seconds{-1, -1, 0}
	res, err := RunFaulty(sliceProgram{ops: ops}, 3, unitModel(), zeroNet(), nil,
		&FaultSpec{DeadAt: deadAt, Timeout: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 arrives at 1, times out at 3; rank 1 arrives at 2, times out 4.
	if res.Ranks[0].End != 3 {
		t.Fatalf("rank 0 end %v, want 3 (arrive 1 + timeout 2)", res.Ranks[0].End)
	}
	if res.Ranks[1].End != 4 {
		t.Fatalf("rank 1 end %v, want 4 (arrive 2 + timeout 2)", res.Ranks[1].End)
	}
	if res.Ranks[0].Wait != 2 || res.Ranks[1].Wait != 2 {
		t.Fatalf("timeout not accounted as wait: %v / %v", res.Ranks[0].Wait, res.Ranks[1].Wait)
	}
}
