package simmpi

import "varpower/internal/units"

// Probe observes a DES execution interval by interval — the hook the
// flight recorder (internal/flight) uses to capture per-rank phase
// timelines and per-round straggler information without the engine knowing
// anything about recording.
//
// Both engines invoke a probe only from their serial event loop, in a
// deterministic order for a given program and model, so implementations
// need not be concurrency-safe and recorded output is reproducible at any
// caller fan-out. Probes must treat every argument as read-only; they
// cannot influence the simulation.
type Probe interface {
	// Interval reports that rank spent [start, end) in the given phase
	// during round (the SPMD round for the lockstep engine, the rank's op
	// index for the async engine). Zero-length intervals are not reported.
	Interval(rank, round int, phase ProbePhase, start, end units.Seconds)

	// Collective reports a communication round's arrival spread: the
	// straggler rank arrived last (lowest rank wins ties) at time latest,
	// the fastest participant at earliest. Emitted by the lockstep engine
	// for every Sendrecv, Barrier and Allreduce round; kind is "sendrecv",
	// "barrier" or "allreduce". For Sendrecv rounds the straggler is the
	// round's globally latest arrival — the rank every transitively
	// coupled neighbourhood ultimately waits on.
	Collective(round int, kind string, straggler int, earliest, latest units.Seconds)
}

// ProbePhase classifies a probed interval.
type ProbePhase uint8

// Probed phases.
const (
	// ProbeCompute: local computation.
	ProbeCompute ProbePhase = iota
	// ProbeP2PWait: blocked on a peer in a point-to-point exchange.
	ProbeP2PWait
	// ProbeCollectiveWait: blocked at a barrier/allreduce (or, in the
	// async engine, in a Recv on a reserved collective tag — see
	// CollectiveTagBase).
	ProbeCollectiveWait
	// ProbeXfer: wire time of the rank's messages.
	ProbeXfer
)

// spread returns a communication round's arrival spread over the given
// per-rank arrival times: the straggler (argmax, lowest rank on ties) and
// the earliest and latest arrivals — the arguments Probe.Collective wants.
func spread(arrive []units.Seconds) (straggler int, earliest, latest units.Seconds) {
	earliest = arrive[0]
	latest = arrive[0]
	for rank, at := range arrive {
		if at < earliest {
			earliest = at
		}
		if at > latest {
			latest = at
			straggler = rank
		}
	}
	return straggler, earliest, latest
}

// String returns the stable name of the phase.
func (p ProbePhase) String() string {
	switch p {
	case ProbeCompute:
		return "compute"
	case ProbeP2PWait:
		return "p2p-wait"
	case ProbeCollectiveWait:
		return "collective-wait"
	case ProbeXfer:
		return "xfer"
	}
	return "unknown"
}
