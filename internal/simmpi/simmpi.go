// Package simmpi is a discrete-event simulator for SPMD message-passing
// programs — the substrate that stands in for MPI on the paper's 1,920-rank
// application runs.
//
// Programs are bulk-synchronous SPMD: every rank executes the same sequence
// of operation *kinds* (compute, neighbour exchange, barrier, allreduce),
// though per-rank parameters (work amounts, peer lists) differ. The engine
// exploits that structure: it advances all ranks round by round and
// resolves each communication round exactly — a rank's Sendrecv completes
// when the slowest participating peer has arrived, a collective completes
// when the slowest rank in the communicator has arrived. This is the
// mechanism behind the paper's central performance observation: frequency
// inhomogeneity hurts unsynchronised codes through per-rank time spread
// (*DGEMM, Figure 2(iii)) and synchronised codes through wait time at
// exchanges (MHD, Figure 3).
//
// Per-rank accounting separates busy time (compute), transfer time (wire
// cost of messages) and wait time (blocked on slower peers), so experiments
// can reproduce both the execution-time plots and the cumulative
// MPI_Sendrecv-time plots.
package simmpi

import (
	"fmt"
	"math"

	"varpower/internal/telemetry"
	"varpower/internal/units"
)

// MPI runtime telemetry — the Vt side of the paper's measurements: how the
// simulated application's time splits into per-rank busy and wait
// (Figures 3 and 5 are distributions over exactly these quantities), and
// how much communication structure each run carried. Busy/wait are in
// *virtual* (simulated) seconds; counters are incremented once per round,
// not per rank, so the hot loop stays untouched.
var (
	mRounds = func() map[string]*telemetry.Counter {
		m := make(map[string]*telemetry.Counter, 4)
		for _, kind := range []string{"compute", "sendrecv", "barrier", "allreduce"} {
			m[kind] = telemetry.Default().Counter("varpower_mpi_rounds_total",
				"SPMD operation rounds executed, by operation kind.", telemetry.Labels{"kind": kind})
		}
		return m
	}()
	mRankBusy = telemetry.Default().Histogram("varpower_mpi_rank_busy_seconds",
		"Per-rank compute (busy) time per run, in simulated seconds.", telemetry.SecondBuckets, nil)
	mRankWait = telemetry.Default().Histogram("varpower_mpi_rank_wait_seconds",
		"Per-rank time blocked on slower peers per run, in simulated seconds — the paper's wait-time inhomogeneity signal.",
		telemetry.SecondBuckets, nil)
)

// Op is one operation of a rank's program.
type Op interface{ isOp() }

// Compute models a local computation of Cycles frequency-scaled core cycles
// plus Bytes of memory traffic.
type Compute struct {
	Cycles float64
	Bytes  float64
}

// Sendrecv models a simultaneous exchange with each listed peer (the
// MPI_Sendrecv halo pattern); Bytes is the per-peer message size.
type Sendrecv struct {
	Peers []int
	Bytes float64
}

// Barrier blocks until every rank arrives.
type Barrier struct{}

// Allreduce is a barrier plus a tree reduction of Bytes payload.
type Allreduce struct {
	Bytes float64
}

func (Compute) isOp()   {}
func (Sendrecv) isOp()  {}
func (Barrier) isOp()   {}
func (Allreduce) isOp() {}

// Program generates the SPMD operation sequence. Round r of every rank must
// carry the same operation kind; parameters may differ per rank.
type Program interface {
	// Rounds is the number of operation rounds.
	Rounds() int
	// Round returns rank's operation for round r.
	Round(rank, r int) Op
}

// Model converts a rank's abstract work into time on whatever hardware the
// rank is running on.
type Model interface {
	// ComputeTime returns the wall time rank needs for the given work.
	ComputeTime(rank int, cycles, bytes float64) units.Seconds
}

// ModelFunc adapts a function to the Model interface.
type ModelFunc func(rank int, cycles, bytes float64) units.Seconds

// ComputeTime implements Model.
func (f ModelFunc) ComputeTime(rank int, cycles, bytes float64) units.Seconds {
	return f(rank, cycles, bytes)
}

// Network describes the interconnect cost model: Cost = Latency +
// Bytes/Bandwidth per message, with collectives paying a log2(size) latency
// tree.
type Network struct {
	Latency   units.Seconds
	Bandwidth float64 // bytes/s
}

// DefaultNetwork approximates the FDR InfiniBand fabric of HA8K.
var DefaultNetwork = Network{Latency: 2e-6, Bandwidth: 5e9}

// transfer returns the wire time for one message of the given size.
func (n Network) transfer(bytes float64) units.Seconds {
	if bytes <= 0 {
		return n.Latency
	}
	if n.Bandwidth <= 0 {
		return n.Latency
	}
	return n.Latency + units.Seconds(bytes/n.Bandwidth)
}

// collectiveCost returns the wire time of a size-rank tree collective.
func (n Network) collectiveCost(bytes float64, size int) units.Seconds {
	depth := math.Ceil(math.Log2(float64(size)))
	if depth < 1 {
		depth = 1
	}
	per := n.transfer(bytes)
	return units.Seconds(depth) * per
}

// RankStats is the per-rank timing breakdown of a run.
type RankStats struct {
	// End is the rank's virtual completion time (its death time, for a rank
	// that died).
	End units.Seconds
	// Busy is the time spent computing.
	Busy units.Seconds
	// Wait is the time spent blocked on slower peers (all op kinds).
	Wait units.Seconds
	// Xfer is the wire time of this rank's messages.
	Xfer units.Seconds
	// Sendrecv is the cumulative time inside Sendrecv calls (wait + wire) —
	// the quantity on the x-axis of the paper's Figure 3.
	Sendrecv units.Seconds
	// Dead reports that the rank died mid-run (fault injection); its stats
	// cover only the portion it survived.
	Dead bool
}

// Result is the outcome of a simulated run.
type Result struct {
	Ranks []RankStats
	// Elapsed is the application's completion time: the slowest *surviving*
	// rank (the slowest rank overall when none survive).
	Elapsed units.Seconds
}

// DefaultDeadTimeout is the collective/peer timeout survivors pay per
// communication round that involves a dead rank, standing in for an MPI
// fault-tolerance layer's failure detector (ULFM-style revoke+shrink).
const DefaultDeadTimeout = units.Seconds(1.0)

// FaultSpec injects rank deaths into a run. The simulated runtime detects a
// dead peer by timeout rather than deadlocking: a Sendrecv against a dead
// peer completes at the waiter's arrival plus Timeout, and a collective with
// any dead member completes at the slowest survivor's arrival plus Timeout.
// A nil *FaultSpec is the healthy run, byte-identical to RunProbed.
type FaultSpec struct {
	// DeadAt gives each rank's death time on the run's virtual clock; a
	// negative entry means the rank never dies. A rank dies when its local
	// clock crosses the death time during compute (the op is truncated); a
	// rank blocked in communication at its death time is torn down at the
	// next round boundary.
	DeadAt []units.Seconds
	// Timeout is the failure-detection latency (DefaultDeadTimeout if 0).
	Timeout units.Seconds
}

// faultState is the per-run mutable view of a FaultSpec.
type faultState struct {
	deadAt  []units.Seconds
	dead    []bool
	timeout units.Seconds
}

func newFaultState(fs *FaultSpec, size int) (*faultState, error) {
	if fs == nil {
		return nil, nil
	}
	if fs.DeadAt != nil && len(fs.DeadAt) != size {
		return nil, fmt.Errorf("simmpi: FaultSpec has %d death times for %d ranks", len(fs.DeadAt), size)
	}
	st := &faultState{
		deadAt:  fs.DeadAt,
		dead:    make([]bool, size),
		timeout: fs.Timeout,
	}
	if st.timeout <= 0 {
		st.timeout = DefaultDeadTimeout
	}
	if st.deadAt == nil {
		st.deadAt = make([]units.Seconds, size)
		for i := range st.deadAt {
			st.deadAt[i] = -1
		}
	}
	return st, nil
}

// dies reports whether the rank's death time is set and at or before t.
func (f *faultState) dies(rank int, t units.Seconds) bool {
	return !f.dead[rank] && f.deadAt[rank] >= 0 && t >= f.deadAt[rank]
}

// Run executes the program on size ranks against the model and network.
func Run(p Program, size int, m Model, net Network) (Result, error) {
	return RunProbed(p, size, m, net, nil)
}

// RunProbed is Run with an observation probe: every per-rank phase
// interval and every communication round's arrival spread is reported to
// probe (nil probes nothing and costs one predictable branch per event).
// Probe calls are made from this serial loop in deterministic order; the
// probe cannot change the result.
func RunProbed(p Program, size int, m Model, net Network, probe Probe) (Result, error) {
	return RunFaulty(p, size, m, net, probe, nil)
}

// RunFaulty is RunProbed under a fault specification: listed ranks die at
// their appointed times and the run finishes degraded instead of
// deadlocking. With a nil spec the engine takes the exact healthy path.
func RunFaulty(p Program, size int, m Model, net Network, probe Probe, fs *FaultSpec) (Result, error) {
	if size < 1 {
		return Result{}, fmt.Errorf("simmpi: size %d < 1", size)
	}
	fault, err := newFaultState(fs, size)
	if err != nil {
		return Result{}, err
	}
	res := Result{Ranks: make([]RankStats, size)}
	t := make([]units.Seconds, size)
	arrive := make([]units.Seconds, size)
	rounds := p.Rounds()

	for r := 0; r < rounds; r++ {
		// Tear down ranks whose death time passed while they were blocked in
		// communication: they stop participating from this round on.
		if fault != nil {
			for rank := 0; rank < size; rank++ {
				if fault.dies(rank, t[rank]) {
					fault.dead[rank] = true
				}
			}
		}
		proto := p.Round(0, r)
		switch proto.(type) {
		case Compute:
			mRounds["compute"].Inc()
			for rank := 0; rank < size; rank++ {
				if fault != nil && fault.dead[rank] {
					continue
				}
				op, ok := p.Round(rank, r).(Compute)
				if !ok {
					return Result{}, kindMismatch(r, rank, proto, p.Round(rank, r))
				}
				dt := m.ComputeTime(rank, op.Cycles, op.Bytes)
				if dt < 0 {
					return Result{}, fmt.Errorf("simmpi: negative compute time %v at rank %d round %d", dt, rank, r)
				}
				if fault != nil && fault.dies(rank, t[rank]+dt) {
					// The rank dies mid-compute: truncate the op at the
					// death time and mark the rank down.
					if da := fault.deadAt[rank]; da > t[rank] {
						dt = da - t[rank]
					} else {
						dt = 0
					}
					fault.dead[rank] = true
				}
				if probe != nil && dt > 0 {
					probe.Interval(rank, r, ProbeCompute, t[rank], t[rank]+dt)
				}
				t[rank] += dt
				res.Ranks[rank].Busy += dt
			}

		case Sendrecv:
			mRounds["sendrecv"].Inc()
			copy(arrive, t)
			for rank := 0; rank < size; rank++ {
				if fault != nil && fault.dead[rank] {
					continue
				}
				op, ok := p.Round(rank, r).(Sendrecv)
				if !ok {
					return Result{}, kindMismatch(r, rank, proto, p.Round(rank, r))
				}
				start := arrive[rank]
				deadPeer := false
				for _, peer := range op.Peers {
					if peer < 0 || peer >= size {
						return Result{}, fmt.Errorf("simmpi: rank %d round %d has peer %d outside [0,%d)", rank, r, peer, size)
					}
					if fault != nil && fault.dead[peer] {
						deadPeer = true
						continue
					}
					if arrive[peer] > start {
						start = arrive[peer]
					}
				}
				if deadPeer {
					// A dead peer never arrives; the waiter's failure
					// detector fires Timeout after its own arrival.
					if to := arrive[rank] + fault.timeout; to > start {
						start = to
					}
				}
				xfer := net.transfer(op.Bytes)
				end := start + xfer
				st := &res.Ranks[rank]
				st.Wait += start - arrive[rank]
				st.Xfer += xfer
				st.Sendrecv += end - arrive[rank]
				t[rank] = end
				if probe != nil {
					if start > arrive[rank] {
						probe.Interval(rank, r, ProbeP2PWait, arrive[rank], start)
					}
					if xfer > 0 {
						probe.Interval(rank, r, ProbeXfer, start, end)
					}
				}
			}
			if probe != nil {
				straggler, earliest, latest := spread(arrive)
				probe.Collective(r, "sendrecv", straggler, earliest, latest)
			}

		case Barrier, Allreduce:
			kind := "barrier"
			if _, isAR := proto.(Allreduce); isAR {
				kind = "allreduce"
			}
			mRounds[kind].Inc()
			copy(arrive, t)
			var max units.Seconds
			anyDead := false
			for rank := 0; rank < size; rank++ {
				if fault != nil && fault.dead[rank] {
					anyDead = true
					continue
				}
				if arrive[rank] > max {
					max = arrive[rank]
				}
			}
			if anyDead {
				// The collective completes only after the survivors' failure
				// detector gives up on the dead members.
				max += fault.timeout
			}
			var cost units.Seconds
			if ar, ok := proto.(Allreduce); ok {
				cost = net.collectiveCost(ar.Bytes, size)
			} else {
				cost = net.collectiveCost(0, size)
			}
			for rank := 0; rank < size; rank++ {
				if fault != nil && fault.dead[rank] {
					continue
				}
				if !sameKind(proto, p.Round(rank, r)) {
					return Result{}, kindMismatch(r, rank, proto, p.Round(rank, r))
				}
				st := &res.Ranks[rank]
				st.Wait += max - arrive[rank]
				st.Xfer += cost
				t[rank] = max + cost
				if probe != nil {
					if max > arrive[rank] {
						probe.Interval(rank, r, ProbeCollectiveWait, arrive[rank], max)
					}
					if cost > 0 {
						probe.Interval(rank, r, ProbeXfer, max, max+cost)
					}
				}
			}
			if probe != nil {
				straggler, earliest, latest := spread(arrive)
				probe.Collective(r, kind, straggler, earliest, latest)
			}

		default:
			return Result{}, fmt.Errorf("simmpi: unknown op %T at round %d", proto, r)
		}
	}

	// A rank whose death time falls after its last op still counts as dead
	// only if the clock reached it; sweep once more so deaths scheduled
	// before the run's end are all reflected.
	if fault != nil {
		for rank := 0; rank < size; rank++ {
			if fault.dies(rank, t[rank]) {
				fault.dead[rank] = true
			}
		}
	}
	var maxAny units.Seconds
	for rank := 0; rank < size; rank++ {
		res.Ranks[rank].End = t[rank]
		if fault != nil && fault.dead[rank] {
			res.Ranks[rank].Dead = true
		}
		if t[rank] > maxAny {
			maxAny = t[rank]
		}
		if !res.Ranks[rank].Dead && t[rank] > res.Elapsed {
			res.Elapsed = t[rank]
		}
		mRankBusy.Observe(float64(res.Ranks[rank].Busy))
		mRankWait.Observe(float64(res.Ranks[rank].Wait))
	}
	if res.Elapsed == 0 && fault != nil {
		// Every rank died: report the last death as completion.
		res.Elapsed = maxAny
	}
	return res, nil
}

// sameKind reports whether two ops share a concrete kind. It is called once
// per rank in collective rounds, so it must not allocate (the previous
// fmt.Sprintf("%T") implementation was ~5% of all simulation allocations).
func sameKind(a, b Op) bool {
	switch a.(type) {
	case Compute:
		_, ok := b.(Compute)
		return ok
	case Sendrecv:
		_, ok := b.(Sendrecv)
		return ok
	case Barrier:
		_, ok := b.(Barrier)
		return ok
	case Allreduce:
		_, ok := b.(Allreduce)
		return ok
	default:
		return false
	}
}

func kindMismatch(round, rank int, want, got Op) error {
	return fmt.Errorf("simmpi: SPMD violation at round %d: rank %d issues %T while rank 0 issues %T",
		round, rank, got, want)
}
