package simmpi

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"varpower/internal/units"
	"varpower/internal/xrand"
)

// sliceProgram is a Program backed by explicit per-rank op slices.
type sliceProgram struct{ ops [][]Op }

func (p sliceProgram) Rounds() int          { return len(p.ops[0]) }
func (p sliceProgram) Round(rank, r int) Op { return p.ops[rank][r] }
func unitModel() Model {
	return ModelFunc(func(rank int, cycles, bytes float64) units.Seconds {
		return units.Seconds(cycles) // 1 cycle == 1 second for test clarity
	})
}

func zeroNet() Network { return Network{} }

func TestComputeOnly(t *testing.T) {
	p := sliceProgram{ops: [][]Op{
		{Compute{Cycles: 2}, Compute{Cycles: 3}},
		{Compute{Cycles: 1}, Compute{Cycles: 1}},
	}}
	res, err := Run(p, 2, unitModel(), zeroNet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].End != 5 || res.Ranks[1].End != 2 {
		t.Fatalf("end times %v, %v", res.Ranks[0].End, res.Ranks[1].End)
	}
	if res.Elapsed != 5 {
		t.Fatalf("elapsed %v, want 5 (slowest rank)", res.Elapsed)
	}
	if res.Ranks[0].Busy != 5 || res.Ranks[0].Wait != 0 {
		t.Fatalf("rank 0 accounting: %+v", res.Ranks[0])
	}
}

func TestBarrierEqualizes(t *testing.T) {
	p := sliceProgram{ops: [][]Op{
		{Compute{Cycles: 10}, Barrier{}},
		{Compute{Cycles: 2}, Barrier{}},
	}}
	res, err := Run(p, 2, unitModel(), zeroNet())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].End != res.Ranks[1].End {
		t.Fatalf("barrier exit times differ: %v vs %v", res.Ranks[0].End, res.Ranks[1].End)
	}
	if res.Ranks[1].Wait != 8 {
		t.Fatalf("fast rank wait %v, want 8", res.Ranks[1].Wait)
	}
	if res.Ranks[0].Wait != 0 {
		t.Fatalf("slow rank wait %v, want 0", res.Ranks[0].Wait)
	}
}

func TestSendrecvPairwise(t *testing.T) {
	// Two ranks exchanging: the fast one waits for the slow one.
	net := Network{Latency: 1, Bandwidth: 1} // cost = 1 + bytes
	p := sliceProgram{ops: [][]Op{
		{Compute{Cycles: 7}, Sendrecv{Peers: []int{1}, Bytes: 2}},
		{Compute{Cycles: 3}, Sendrecv{Peers: []int{0}, Bytes: 2}},
	}}
	res, err := Run(p, 2, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	// Both complete at max(7,3) + (1+2) = 10.
	for r := 0; r < 2; r++ {
		if res.Ranks[r].End != 10 {
			t.Fatalf("rank %d end %v, want 10", r, res.Ranks[r].End)
		}
	}
	if res.Ranks[1].Wait != 4 {
		t.Fatalf("fast rank wait %v, want 4", res.Ranks[1].Wait)
	}
	if res.Ranks[1].Sendrecv != 7 { // 4 wait + 3 transfer
		t.Fatalf("fast rank sendrecv time %v, want 7", res.Ranks[1].Sendrecv)
	}
	if res.Ranks[0].Sendrecv != 3 { // transfer only
		t.Fatalf("slow rank sendrecv time %v, want 3", res.Ranks[0].Sendrecv)
	}
}

func TestHaloChainPropagation(t *testing.T) {
	// A ring of 4 where one rank is slow: with repeated exchanges the
	// slowness propagates to all ranks within two iterations (distance ≤ 2
	// on the ring), so everyone ends at the slow rank's pace.
	mkRound := func(slow float64) [][]Op {
		ops := make([][]Op, 4)
		for r := 0; r < 4; r++ {
			c := 1.0
			if r == 0 {
				c = slow
			}
			for it := 0; it < 3; it++ {
				ops[r] = append(ops[r],
					Compute{Cycles: c},
					Sendrecv{Peers: []int{(r + 1) % 4, (r + 3) % 4}})
			}
		}
		return ops
	}
	res, err := Run(sliceProgram{ops: mkRound(5)}, 4, unitModel(), zeroNet())
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 (opposite the slow rank) must have accumulated wait time.
	if res.Ranks[2].Wait == 0 {
		t.Fatal("slowness did not propagate across the ring")
	}
	if res.Ranks[0].Wait != 0 {
		t.Fatalf("slowest rank waited %v, want 0", res.Ranks[0].Wait)
	}
	if res.Elapsed != res.Ranks[0].End {
		t.Fatal("elapsed must equal the slow rank's end time")
	}
}

func TestAllreduceCost(t *testing.T) {
	net := Network{Latency: 1, Bandwidth: 1e12}
	p := sliceProgram{ops: [][]Op{
		{Allreduce{Bytes: 8}},
		{Allreduce{Bytes: 8}},
		{Allreduce{Bytes: 8}},
		{Allreduce{Bytes: 8}},
	}}
	res, err := Run(p, 4, unitModel(), net)
	if err != nil {
		t.Fatal(err)
	}
	// log2(4) = 2 tree stages of ≈1 s latency each.
	if math.Abs(float64(res.Elapsed)-2) > 0.01 {
		t.Fatalf("allreduce cost %v, want ≈ 2", res.Elapsed)
	}
}

func TestSPMDViolation(t *testing.T) {
	p := sliceProgram{ops: [][]Op{
		{Compute{Cycles: 1}},
		{Barrier{}},
	}}
	_, err := Run(p, 2, unitModel(), zeroNet())
	if err == nil || !strings.Contains(err.Error(), "SPMD violation") {
		t.Fatalf("want SPMD violation, got %v", err)
	}
}

func TestBadPeer(t *testing.T) {
	p := sliceProgram{ops: [][]Op{
		{Sendrecv{Peers: []int{5}}},
		{Sendrecv{Peers: []int{0}}},
	}}
	if _, err := Run(p, 2, unitModel(), zeroNet()); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestNegativeComputeTime(t *testing.T) {
	bad := ModelFunc(func(rank int, cycles, bytes float64) units.Seconds { return -1 })
	p := sliceProgram{ops: [][]Op{{Compute{Cycles: 1}}}}
	if _, err := Run(p, 1, bad, zeroNet()); err == nil {
		t.Fatal("negative compute time accepted")
	}
}

func TestZeroSize(t *testing.T) {
	p := sliceProgram{ops: [][]Op{{Compute{Cycles: 1}}}}
	if _, err := Run(p, 0, unitModel(), zeroNet()); err == nil {
		t.Fatal("zero-rank run accepted")
	}
}

// randomProgram builds a random valid SPMD program for property testing.
func randomProgram(rng *xrand.Stream, size, rounds int) sliceProgram {
	ops := make([][]Op, size)
	for r := range ops {
		ops[r] = make([]Op, rounds)
	}
	for round := 0; round < rounds; round++ {
		switch rng.Intn(4) {
		case 0, 1:
			for r := 0; r < size; r++ {
				ops[r][round] = Compute{Cycles: rng.Uniform(0, 5)}
			}
		case 2:
			for r := 0; r < size; r++ {
				ops[r][round] = Sendrecv{Peers: []int{(r + 1) % size, (r + size - 1) % size}, Bytes: 100}
			}
		default:
			for r := 0; r < size; r++ {
				ops[r][round] = Barrier{}
			}
		}
	}
	return sliceProgram{ops: ops}
}

func TestInvariantsOnRandomPrograms(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		size := 2 + rng.Intn(8)
		rounds := 1 + rng.Intn(12)
		p := randomProgram(rng, size, rounds)
		res, err := Run(p, size, unitModel(), Network{Latency: 0.01, Bandwidth: 1e6})
		if err != nil {
			return false
		}
		for _, st := range res.Ranks {
			// End decomposes exactly into busy + wait + transfer.
			if math.Abs(float64(st.End-(st.Busy+st.Wait+st.Xfer))) > 1e-9 {
				return false
			}
			if st.Wait < 0 || st.Busy < 0 || st.Xfer < 0 || st.Sendrecv < 0 {
				return false
			}
			if st.End > res.Elapsed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	rng := xrand.New(77)
	p := randomProgram(rng, 6, 10)
	a, err := Run(p, 6, unitModel(), DefaultNetwork)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, 6, unitModel(), DefaultNetwork)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("rank %d differs across identical runs", i)
		}
	}
}
