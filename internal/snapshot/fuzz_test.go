package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"
)

// validImage renders a well-formed snapshot image in memory.
func validImage(version uint32, payload []byte) []byte {
	var buf bytes.Buffer
	// Reuse the writer through a pipe-free path: build the header exactly
	// as write() does.
	img := make([]byte, headerSize+len(payload))
	copy(img[0:8], magic[:])
	binary.BigEndian.PutUint32(img[8:12], version)
	binary.BigEndian.PutUint64(img[12:20], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(img[20:52], sum[:])
	copy(img[headerSize:], payload)
	buf.Write(img)
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary (and systematically mutated) images into the
// snapshot reader. The contract under fuzz: never panic, and either return
// the exact payload of a genuinely valid image or a typed error — so a
// restore path can always fall back to a cold rebuild cleanly, and a
// corrupt PVT can never be silently accepted.
func FuzzDecode(f *testing.F) {
	payload := []byte(`{"system":"HA8K","generation":2,"pvt":{"entries":[{"module":0,"cpu_max":1.01}]}}`)
	valid := validImage(1, payload)
	f.Add(valid)
	// Truncations at interesting boundaries.
	for _, n := range []int{0, 4, 8, 12, 20, headerSize - 1, headerSize, headerSize + 1, len(valid) - 1} {
		f.Add(valid[:n])
	}
	// Version bump, magic damage, checksum damage, payload bit-flips.
	for _, i := range []int{0, 7, 8, 11, 20, 51, headerSize, len(valid) - 1} {
		b := bytes.Clone(valid)
		b[i] ^= 0x80
		f.Add(b)
	}
	f.Add(append(bytes.Clone(valid), 0x00))
	f.Add([]byte("{}"))

	f.Fuzz(func(t *testing.T, img []byte) {
		got, _, err := Decode("fuzz.snap", 1, img)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error outside the corruption taxonomy: %v", err)
			}
			return
		}
		// Accepted: the image must verify bit-exactly — same header shape,
		// same checksum — i.e. re-encoding the accepted payload reproduces
		// the image. Anything else means a mutation slipped through.
		if !bytes.Equal(validImage(1, got), img) {
			t.Fatalf("decoder accepted a non-canonical image:\n img=%x\n got=%x", img, got)
		}
	})
}
