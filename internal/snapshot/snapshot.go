// Package snapshot is the durable-state layer under varpowerd's crash
// safety: a calibrated shard must survive a SIGKILL without losing the
// install-time PVT, the recalibration generation, the attribution history
// or the rendered solve cache it spent minutes building. The package owns
// the file format only — what goes *into* a snapshot is the service
// layer's concern — and holds it to three properties:
//
//   - versioned: a fixed magic plus an explicit format version lead the
//     file; a reader asked for version N cleanly rejects anything else
//     (ErrVersion), so a rolling upgrade can never half-parse an old file;
//   - checksummed: the payload's length and SHA-256 digest live in the
//     header, and Read verifies both — a truncated write (ErrTruncated)
//     or a bit-flip (ErrChecksum) is detected, never deserialized;
//   - atomic: Write renders to a temporary file in the destination
//     directory, fsyncs it, renames it over the target, and fsyncs the
//     directory — a crash mid-write leaves either the old snapshot or the
//     new one, never a torn file.
//
// Every rejection is a typed error under ErrCorrupt (errors.Is), so a
// caller can distinguish "no snapshot" (fs.ErrNotExist) from "bad
// snapshot" and fall back to a cold rebuild in both cases — loudly in the
// second.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"varpower/internal/telemetry"
)

// Snapshot-layer telemetry: the varpower_snapshot_* family. Write counts
// and latency make the periodic-snapshot cost visible next to the serving
// metrics; the bytes gauge tracks the last written size per file.
var (
	mWrites = telemetry.Default().Counter("varpower_snapshot_writes_total",
		"Durable state snapshots written (atomic rename completed).", nil)
	mWriteErrors = telemetry.Default().Counter("varpower_snapshot_write_errors_total",
		"Snapshot writes that failed before the atomic rename.", nil)
	mWriteSeconds = telemetry.Default().Histogram("varpower_snapshot_write_seconds",
		"Wall-clock time to render, fsync and rename one snapshot.",
		telemetry.ExpBuckets(100e-6, 2.51, 14), nil)
	mBytes = telemetry.Default().Gauge("varpower_snapshot_bytes",
		"Size in bytes of the most recently written snapshot.", nil)
)

// magic leads every snapshot file. The trailing byte is deliberately not
// ASCII so text tools do not mistake the file for JSON.
var magic = [8]byte{'V', 'P', 'S', 'N', 'A', 'P', 0x00, 0xA5}

// headerSize is the fixed prefix before the payload: magic (8), version
// (4, big-endian), payload length (8, big-endian), SHA-256 digest (32).
const headerSize = 8 + 4 + 8 + 32

// maxPayload bounds how large a payload Read will accept; snapshots are
// megabytes of JSON, so anything claiming more than this is corrupt.
const maxPayload = 1 << 30

// Corruption taxonomy. ErrCorrupt is the umbrella: every specific
// rejection wraps it, so `errors.Is(err, snapshot.ErrCorrupt)` is the one
// test a restore path needs before falling back to a cold rebuild.
var (
	ErrCorrupt   = errors.New("snapshot: corrupt")
	ErrBadMagic  = fmt.Errorf("%w: bad magic (not a snapshot file)", ErrCorrupt)
	ErrVersion   = fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	ErrTruncated = fmt.Errorf("%w: truncated payload", ErrCorrupt)
	ErrChecksum  = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
)

// Meta describes a written or verified snapshot file.
type Meta struct {
	Path    string `json:"path"`
	Version uint32 `json:"version"`
	Bytes   int64  `json:"bytes"`
	SHA256  string `json:"sha256"`
}

// Write atomically persists payload to path under the given format
// version: temp file in the same directory, fsync, rename, directory
// fsync. The returned Meta describes the finished file.
func Write(path string, version uint32, payload []byte) (Meta, error) {
	start := time.Now()
	m, err := write(path, version, payload)
	if err != nil {
		mWriteErrors.Inc()
		return Meta{}, err
	}
	mWrites.Inc()
	mWriteSeconds.Observe(time.Since(start).Seconds())
	mBytes.Set(float64(m.Bytes))
	return m, nil
}

func write(path string, version uint32, payload []byte) (Meta, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Meta{}, fmt.Errorf("snapshot: create dir: %w", err)
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return Meta{}, fmt.Errorf("snapshot: create temp: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()

	sum := sha256.Sum256(payload)
	hdr := make([]byte, headerSize)
	copy(hdr[0:8], magic[:])
	binary.BigEndian.PutUint32(hdr[8:12], version)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	copy(hdr[20:52], sum[:])
	if _, err := f.Write(hdr); err != nil {
		return Meta{}, fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		return Meta{}, fmt.Errorf("snapshot: write payload: %w", err)
	}
	if err := f.Sync(); err != nil {
		return Meta{}, fmt.Errorf("snapshot: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return Meta{}, fmt.Errorf("snapshot: close temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return Meta{}, fmt.Errorf("snapshot: rename: %w", err)
	}
	tmp = "" // renamed: nothing to clean up
	syncDir(dir)
	return Meta{
		Path:    path,
		Version: version,
		Bytes:   int64(headerSize + len(payload)),
		SHA256:  hex.EncodeToString(sum[:]),
	}, nil
}

// syncDir makes the rename durable. Best-effort: some filesystems refuse
// directory fsync, and the rename itself was already atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Read loads and verifies a snapshot written by Write. A missing file
// surfaces as fs.ErrNotExist; every malformed file as a typed corruption
// error wrapping ErrCorrupt. The payload is returned only after the
// version, length and checksum all verify.
func Read(path string, version uint32) ([]byte, Meta, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, Meta{}, err
	}
	return Decode(path, version, raw)
}

// Decode verifies an in-memory snapshot image (the fuzz surface: Read
// minus the filesystem).
func Decode(path string, version uint32, raw []byte) ([]byte, Meta, error) {
	if len(raw) < headerSize {
		if len(raw) >= 8 && [8]byte(raw[0:8]) != magic {
			return nil, Meta{}, fmt.Errorf("read %s: %w", path, ErrBadMagic)
		}
		return nil, Meta{}, fmt.Errorf("read %s: %d bytes, header needs %d: %w", path, len(raw), headerSize, ErrTruncated)
	}
	if [8]byte(raw[0:8]) != magic {
		return nil, Meta{}, fmt.Errorf("read %s: %w", path, ErrBadMagic)
	}
	if v := binary.BigEndian.Uint32(raw[8:12]); v != version {
		return nil, Meta{}, fmt.Errorf("read %s: version %d, want %d: %w", path, v, version, ErrVersion)
	}
	n := binary.BigEndian.Uint64(raw[12:20])
	if n > maxPayload {
		return nil, Meta{}, fmt.Errorf("read %s: payload claims %d bytes: %w", path, n, ErrTruncated)
	}
	payload := raw[headerSize:]
	if uint64(len(payload)) != n {
		return nil, Meta{}, fmt.Errorf("read %s: payload %d bytes, header says %d: %w", path, len(payload), n, ErrTruncated)
	}
	sum := sha256.Sum256(payload)
	if [32]byte(raw[20:52]) != sum {
		return nil, Meta{}, fmt.Errorf("read %s: %w", path, ErrChecksum)
	}
	return payload, Meta{
		Path:    path,
		Version: version,
		Bytes:   int64(len(raw)),
		SHA256:  hex.EncodeToString(sum[:]),
	}, nil
}

// WriteJSON marshals v and writes it as a snapshot payload.
func WriteJSON(path string, version uint32, v any) (Meta, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return Meta{}, fmt.Errorf("snapshot: marshal payload: %w", err)
	}
	return Write(path, version, payload)
}

// ReadJSON reads, verifies and unmarshals a snapshot payload into v. A
// payload that fails to unmarshal is corruption like any other (the
// checksum guards bits, not schema drift within a version).
func ReadJSON(path string, version uint32, v any) (Meta, error) {
	payload, m, err := Read(path, version)
	if err != nil {
		return Meta{}, err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return Meta{}, fmt.Errorf("read %s: decode payload: %v: %w", path, err, ErrCorrupt)
	}
	return m, nil
}
