package snapshot

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	payload := []byte(`{"hello":"world","n":42}`)

	wm, err := Write(path, 3, payload)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if wm.Version != 3 || wm.Bytes != int64(headerSize+len(payload)) {
		t.Fatalf("write meta = %+v", wm)
	}
	got, rm, err := Read(path, 3)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
	if rm.SHA256 != wm.SHA256 {
		t.Fatalf("checksum mismatch across round trip: %s vs %s", rm.SHA256, wm.SHA256)
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if _, err := Write(path, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(path, 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("got %q, want the replacing write", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestReadMissingFile(t *testing.T) {
	_, _, err := Read(filepath.Join(t.TempDir(), "nope.snap"), 1)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("a missing file must not classify as corrupt: %v", err)
	}
}

// mutate writes a copy of the valid snapshot with fn applied and reads it
// back, returning the read error.
func mutate(t *testing.T, payload []byte, fn func([]byte) []byte) error {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if _, err := Write(path, 7, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Read(path, 7)
	return err
}

func TestReadRejectsCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte("varpower snapshot payload "), 20)
	cases := []struct {
		name string
		fn   func([]byte) []byte
		want error
	}{
		{"truncated-mid-payload", func(b []byte) []byte { return b[:len(b)-9] }, ErrTruncated},
		{"truncated-in-header", func(b []byte) []byte { return b[:headerSize/2] }, ErrTruncated},
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bit-flip-payload", func(b []byte) []byte {
			b[headerSize+5] ^= 0x40
			return b
		}, ErrChecksum},
		{"bit-flip-checksum", func(b []byte) []byte {
			b[21] ^= 0x01
			return b
		}, ErrChecksum},
		{"version-bump", func(b []byte) []byte {
			b[11]++
			return b
		}, ErrVersion},
		{"bad-magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}, ErrBadMagic},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xFF) }, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mutate(t, payload, tc.fn)
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("every rejection must classify under ErrCorrupt, got %v", err)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	type state struct {
		Name string  `json:"name"`
		Gen  uint64  `json:"gen"`
		Vals []float64
	}
	path := filepath.Join(t.TempDir(), "s.snap")
	in := state{Name: "HA8K", Gen: 3, Vals: []float64{1.25, 0.5}}
	if _, err := WriteJSON(path, 1, in); err != nil {
		t.Fatal(err)
	}
	var out state
	if _, err := ReadJSON(path, 1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Gen != in.Gen || len(out.Vals) != 2 || out.Vals[0] != 1.25 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestJSONRejectsMalformedPayload(t *testing.T) {
	// A checksum-valid file whose payload is not the expected JSON shape
	// must classify as corrupt, not panic or half-populate.
	path := filepath.Join(t.TempDir(), "s.snap")
	if _, err := Write(path, 1, []byte(`{"gen": "not a number"`)); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Gen uint64 `json:"gen"`
	}
	_, err := ReadJSON(path, 1, &out)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for malformed payload JSON, got %v", err)
	}
}
