// Package stats implements the summary statistics used throughout the
// paper's analysis: mean, standard deviation, the worst-case variation
// ratios Vp/Vf/Vt (max/min within a set), least-squares linear fits with R²
// (Figure 5), correlation, and percentiles.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation, as in the paper's figures
	Min    float64
	Max    float64
	Median float64
}

// Variation returns the worst-case variation ratio max/min — the paper's
// Vp (power), Vf (frequency), or Vt (execution time) depending on what the
// sample holds. It returns +Inf when min is 0 and max is not.
func (s Summary) Variation() float64 {
	if s.Min == 0 {
		if s.Max == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return s.Max / s.Min
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	s.Median = Percentile(xs, 50)
	return s, nil
}

// MustSummarize is Summarize for samples known to be non-empty; it panics on
// an empty sample, which indicates a program bug rather than bad input.
func MustSummarize(xs []float64) Summary {
	s, err := Summarize(xs)
	if err != nil {
		panic(err)
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs; it panics on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variation returns max(xs)/min(xs) — the paper's worst-case variation. It
// panics on an empty sample and returns +Inf when min is 0 and max is not.
func Variation(xs []float64) float64 {
	s := MustSummarize(xs)
	return s.Variation()
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit is a least-squares line y = Slope*x + Intercept with its
// coefficient of determination R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }

// FitLinear computes the least-squares fit of ys against xs. It returns
// ErrEmpty when fewer than two points are given and an error when all xs are
// identical (vertical line).
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: FitLinear length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: FitLinear degenerate x range")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		// All ys identical: the fit is exact by definition.
		fit.R2 = 1
		return fit, nil
	}
	var ssRes float64
	for i := range xs {
		r := ys[i] - fit.At(xs[i])
		ssRes += r * r
	}
	fit.R2 = 1 - ssRes/syy
	return fit, nil
}

// Correlation returns the Pearson correlation coefficient of xs and ys. It
// returns 0 when either sample has zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket counts plus the bucket edges (n+1 values). It panics on an
// empty sample or n <= 0.
func Histogram(xs []float64, n int) (counts []int, edges []float64) {
	if n <= 0 {
		panic("stats: Histogram with non-positive bucket count")
	}
	s := MustSummarize(xs)
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (s.Max - s.Min) / float64(n)
	for i := range edges {
		edges[i] = s.Min + float64(i)*width
	}
	if width == 0 {
		counts[0] = len(xs)
		return counts, edges
	}
	for _, x := range xs {
		b := int((x - s.Min) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, edges
}

// MeanAbsPctError returns mean(|pred-act|/act) over the paired samples,
// expressed as a fraction (0.05 == 5%). Pairs with act == 0 are skipped.
func MeanAbsPctError(pred, act []float64) float64 {
	if len(pred) != len(act) || len(pred) == 0 {
		return 0
	}
	var sum float64
	var n int
	for i := range pred {
		if act[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-act[i]) / math.Abs(act[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxAbsPctError returns max(|pred-act|/act) over the paired samples as a
// fraction. Pairs with act == 0 are skipped.
func MaxAbsPctError(pred, act []float64) float64 {
	var m float64
	for i := range pred {
		if i >= len(act) || act[i] == 0 {
			continue
		}
		e := math.Abs(pred[i]-act[i]) / math.Abs(act[i])
		if e > m {
			m = e
		}
	}
	return m
}
