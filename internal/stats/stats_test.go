package stats

import (
	"math"
	"testing"
	"testing/quick"

	"varpower/internal/xrand"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("population std = %v, want 2", s.Std)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSummarize(nil) did not panic")
		}
	}()
	MustSummarize(nil)
}

func TestVariation(t *testing.T) {
	if v := Variation([]float64{50, 60, 65}); math.Abs(v-1.3) > 1e-12 {
		t.Fatalf("Variation = %v, want 1.3", v)
	}
	if v := Variation([]float64{0, 0}); v != 1 {
		t.Fatalf("all-zero variation = %v, want 1", v)
	}
	if v := Variation([]float64{0, 5}); !math.IsInf(v, 1) {
		t.Fatalf("zero-min variation = %v, want +Inf", v)
	}
}

func TestVariationAtLeastOne(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && x > 0 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		return Variation(clean) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {62.5, 3.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// The input must not be reordered.
	orig := []float64{5, 1, 3}
	Percentile(orig, 50)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 || fit.R2 != 1 {
		t.Fatalf("bad fit %+v", fit)
	}
	if math.Abs(fit.At(10)-23) > 1e-12 {
		t.Fatalf("At(10) = %v, want 23", fit.At(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := xrand.New(3)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 50
		xs = append(xs, x)
		ys = append(ys, 4*x+1+rng.Normal(0, 0.05))
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-4) > 0.02 || math.Abs(fit.Intercept-1) > 0.05 {
		t.Fatalf("noisy fit off: %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v, want ≥ 0.99", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point fit should fail")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("vertical line should fail")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 7 || fit.R2 != 1 {
		t.Fatalf("constant-y fit %+v", fit)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, up); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect positive correlation = %v", c)
	}
	if c := Correlation(xs, down); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect negative correlation = %v", c)
	}
	if c := Correlation(xs, []float64{3, 3, 3, 3, 3}); c != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", c)
	}
	if c := Correlation(xs, xs[:2]); c != 0 {
		t.Errorf("mismatched lengths correlation = %v, want 0", c)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: %v, %v", counts, edges)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost samples: %v", counts)
	}
	// Constant sample: everything lands in the first bucket.
	counts, _ = Histogram([]float64{4, 4, 4}, 3)
	if counts[0] != 3 {
		t.Fatalf("constant histogram %v", counts)
	}
}

func TestPctErrors(t *testing.T) {
	pred := []float64{110, 90, 100}
	act := []float64{100, 100, 100}
	if m := MeanAbsPctError(pred, act); math.Abs(m-0.1+0.1/3) > 0.034 {
		// mean(0.1, 0.1, 0) = 0.0667
		if math.Abs(m-0.0667) > 1e-3 {
			t.Errorf("mean pct error = %v", m)
		}
	}
	if m := MaxAbsPctError(pred, act); math.Abs(m-0.1) > 1e-12 {
		t.Errorf("max pct error = %v, want 0.1", m)
	}
	if m := MeanAbsPctError([]float64{1}, []float64{0}); m != 0 {
		t.Errorf("zero-actual pairs should be skipped, got %v", m)
	}
	if m := MeanAbsPctError(nil, nil); m != 0 {
		t.Errorf("empty error = %v", m)
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Mean(xs) != 3 {
		t.Fatal("Min/Max/Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}
