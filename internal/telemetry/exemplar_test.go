package telemetry

import (
	"strings"
	"testing"
)

func TestObserveWithExemplar(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.Observe(0.05) // no exemplar
	s := h.Snapshot()
	if s.Exemplars != nil {
		t.Fatal("exemplars allocated without any exemplar observation")
	}
	h.ObserveWithExemplar(0.05, "aaaa")
	h.ObserveWithExemplar(0.07, "bbbb") // same bucket: last wins
	h.ObserveWithExemplar(0.5, "cccc")
	h.ObserveWithExemplar(5, "dddd") // +Inf bucket
	s = h.Snapshot()
	if len(s.Exemplars) != len(s.Counts) {
		t.Fatalf("exemplars len %d, want %d", len(s.Exemplars), len(s.Counts))
	}
	if s.Exemplars[0].TraceID != "bbbb" || s.Exemplars[0].Value != 0.07 {
		t.Fatalf("bucket 0 exemplar %+v, want last-wins bbbb/0.07", s.Exemplars[0])
	}
	if s.Exemplars[1].TraceID != "cccc" || s.Exemplars[2].TraceID != "dddd" {
		t.Fatalf("bucket exemplars %+v", s.Exemplars)
	}
	// Rejected observations must not pin an exemplar.
	h.ObserveWithExemplar(-1, "eeee")
	if got := h.Snapshot().Exemplars[0].TraceID; got != "bbbb" {
		t.Fatalf("rejected observation overwrote exemplar: %s", got)
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("varpower_http_request_duration_seconds", "Request latency.",
		[]float64{0.1, 1}, Labels{"route": "/v1/solve"})
	h.ObserveWithExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.Observe(0.5)
	r.Counter("varpower_http_requests_total", "Requests.", Labels{"route": "/v1/solve"}).Inc()

	var b strings.Builder
	if err := Write(&b, r, FormatOpenMetrics); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `varpower_http_request_duration_seconds_bucket{le="0.1",route="/v1/solve"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05`
	if !strings.Contains(out, want) {
		t.Errorf("openmetrics output missing exemplar line %q:\n%s", want, out)
	}
	if !strings.Contains(out, `le="1",route="/v1/solve"} 2`+"\n") {
		t.Errorf("cumulative bucket without exemplar malformed:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("openmetrics output must end with # EOF:\n%s", out)
	}
}
