package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// quantiles exported by the JSON and CSV forms.
var exportQuantiles = []float64{0, 0.5, 0.9, 0.99, 1}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set (plus optional extra pair) as
// {a="1",b="2"}, keys sorted, empty string for no labels.
func promLabels(labels Labels, extraKey, extraVal string) string {
	n := len(labels)
	if extraKey != "" {
		n++
	}
	if n == 0 {
		return ""
	}
	keys := make([]string, 0, n)
	for k := range labels {
		keys = append(keys, k)
	}
	if extraKey != "" {
		keys = append(keys, extraKey)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		if k == extraKey {
			v = extraVal
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, fam.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Series {
			switch fam.Type {
			case TypeCounter, TypeGauge:
				fmt.Fprintf(bw, "%s%s %s\n", fam.Name, promLabels(s.Labels, "", ""), formatFloat(s.Value))
			case TypeHistogram:
				h := s.Hist
				var cum uint64
				for i, bound := range h.Bounds {
					cum += h.Counts[i]
					fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.Name,
						promLabels(s.Labels, "le", formatFloat(bound)), cum)
				}
				cum += h.Counts[len(h.Bounds)]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.Name, promLabels(s.Labels, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam.Name, promLabels(s.Labels, "", ""), formatFloat(h.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam.Name, promLabels(s.Labels, "", ""), h.Count)
			}
		}
	}
	return bw.Flush()
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// the same sample lines as the Prometheus form, plus histogram bucket
// exemplars (`# {trace_id="…"} value` after the bucket sample) and the
// mandatory `# EOF` terminator. Exemplars are the point of this format —
// they are how a p99 bucket on a dashboard links to a concrete request
// trace — so it is the format /v1/metrics?format=openmetrics serves.
func WriteOpenMetrics(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, fam.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Series {
			switch fam.Type {
			case TypeCounter, TypeGauge:
				fmt.Fprintf(bw, "%s%s %s\n", fam.Name, promLabels(s.Labels, "", ""), formatFloat(s.Value))
			case TypeHistogram:
				h := s.Hist
				var cum uint64
				bucket := func(i int, le string) {
					fmt.Fprintf(bw, "%s_bucket%s %d", fam.Name, promLabels(s.Labels, "le", le), cum)
					if h.Exemplars != nil && h.Exemplars[i].TraceID != "" {
						fmt.Fprintf(bw, ` # {trace_id="%s"} %s`,
							escapeLabel(h.Exemplars[i].TraceID), formatFloat(h.Exemplars[i].Value))
					}
					bw.WriteByte('\n')
				}
				for i, bound := range h.Bounds {
					cum += h.Counts[i]
					bucket(i, formatFloat(bound))
				}
				cum += h.Counts[len(h.Bounds)]
				bucket(len(h.Bounds), "+Inf")
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam.Name, promLabels(s.Labels, "", ""), formatFloat(h.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam.Name, promLabels(s.Labels, "", ""), h.Count)
			}
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// jsonSeries is the JSON form of one series.
type jsonSeries struct {
	Labels Labels             `json:"labels,omitempty"`
	Value  *float64           `json:"value,omitempty"`
	Count  *uint64            `json:"count,omitempty"`
	Sum    *float64           `json:"sum,omitempty"`
	Min    *float64           `json:"min,omitempty"`
	Max    *float64           `json:"max,omitempty"`
	Q      map[string]float64 `json:"quantiles,omitempty"`
}

// jsonFamily is the JSON form of one family.
type jsonFamily struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as an indented JSON document:
// {"metrics": [{name, type, help, series: [...]}]}. Histogram series carry
// count/sum/min/max and the 0/0.5/0.9/0.99/1 quantiles.
func WriteJSON(w io.Writer, r *Registry) error {
	doc := struct {
		Metrics []jsonFamily `json:"metrics"`
	}{Metrics: []jsonFamily{}}
	for _, fam := range r.Gather() {
		jf := jsonFamily{Name: fam.Name, Type: fam.Type.String(), Help: fam.Help}
		for _, s := range fam.Series {
			js := jsonSeries{Labels: s.Labels}
			if fam.Type == TypeHistogram {
				h := s.Hist
				count, sum := h.Count, h.Sum
				js.Count, js.Sum = &count, &sum
				if h.Count > 0 {
					min, max := h.Min, h.Max
					js.Min, js.Max = &min, &max
					js.Q = make(map[string]float64, len(exportQuantiles))
					for _, p := range exportQuantiles {
						if q, ok := h.Quantile(p); ok {
							js.Q[quantileName(p)] = q
						}
					}
				}
			} else {
				v := s.Value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		doc.Metrics = append(doc.Metrics, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// quantileName renders p as the conventional pNN key ("p50", "p99", …).
func quantileName(p float64) string {
	return "p" + strconv.FormatFloat(p*100, 'g', -1, 64)
}

// WriteCSV renders the registry as long-form CSV:
// name,type,labels,field,value — one row per scalar, several (count, sum,
// min, max, quantiles) per histogram series.
func WriteCSV(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "name,type,labels,field,value"); err != nil {
		return err
	}
	row := func(name string, typ MetricType, labels Labels, field string, value string) {
		fmt.Fprintf(bw, "%s,%s,%q,%s,%s\n", name, typ, labels.key(), field, value)
	}
	for _, fam := range r.Gather() {
		for _, s := range fam.Series {
			switch fam.Type {
			case TypeCounter, TypeGauge:
				row(fam.Name, fam.Type, s.Labels, "value", formatFloat(s.Value))
			case TypeHistogram:
				h := s.Hist
				row(fam.Name, fam.Type, s.Labels, "count", strconv.FormatUint(h.Count, 10))
				row(fam.Name, fam.Type, s.Labels, "sum", formatFloat(h.Sum))
				if h.Count > 0 {
					row(fam.Name, fam.Type, s.Labels, "min", formatFloat(h.Min))
					row(fam.Name, fam.Type, s.Labels, "max", formatFloat(h.Max))
					for _, p := range exportQuantiles {
						if q, ok := h.Quantile(p); ok {
							row(fam.Name, fam.Type, s.Labels, quantileName(p), formatFloat(q))
						}
					}
				}
			}
		}
	}
	return bw.Flush()
}

// Format selects an export encoding.
type Format int

// Export encodings.
const (
	FormatPrometheus Format = iota
	FormatJSON
	FormatCSV
	FormatOpenMetrics
)

// FormatForPath picks the export encoding from a file extension:
// .json → JSON, .csv → CSV, anything else (.prom, .txt, none) →
// Prometheus text.
func FormatForPath(path string) Format {
	switch {
	case strings.HasSuffix(path, ".json"):
		return FormatJSON
	case strings.HasSuffix(path, ".csv"):
		return FormatCSV
	}
	return FormatPrometheus
}

// Write renders the registry in the chosen format.
func Write(w io.Writer, r *Registry, f Format) error {
	switch f {
	case FormatJSON:
		return WriteJSON(w, r)
	case FormatCSV:
		return WriteCSV(w, r)
	case FormatOpenMetrics:
		return WriteOpenMetrics(w, r)
	}
	return WritePrometheus(w, r)
}
