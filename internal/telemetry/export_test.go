package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// goldenRegistry builds a small deterministic registry exercising every
// metric type, labels, and histogram bucket/overflow behaviour.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("varpower_rapl_clamp_events_total", "Caps that bound.", nil).Add(42)
	r.Gauge("varpower_budget_residual_watts", "Budget slack.", nil).Set(-12.5)
	h := r.Histogram("varpower_mpi_rank_wait_seconds", "Rank wait time.", []float64{0.1, 1, 10}, Labels{"bench": "mhd"})
	for _, v := range []float64{0.05, 0.5, 0.5, 2, 200} {
		h.Observe(v)
	}
	return r
}

const goldenProm = `# HELP varpower_budget_residual_watts Budget slack.
# TYPE varpower_budget_residual_watts gauge
varpower_budget_residual_watts -12.5
# HELP varpower_mpi_rank_wait_seconds Rank wait time.
# TYPE varpower_mpi_rank_wait_seconds histogram
varpower_mpi_rank_wait_seconds_bucket{bench="mhd",le="0.1"} 1
varpower_mpi_rank_wait_seconds_bucket{bench="mhd",le="1"} 3
varpower_mpi_rank_wait_seconds_bucket{bench="mhd",le="10"} 4
varpower_mpi_rank_wait_seconds_bucket{bench="mhd",le="+Inf"} 5
varpower_mpi_rank_wait_seconds_sum{bench="mhd"} 203.05
varpower_mpi_rank_wait_seconds_count{bench="mhd"} 5
# HELP varpower_rapl_clamp_events_total Caps that bound.
# TYPE varpower_rapl_clamp_events_total counter
varpower_rapl_clamp_events_total 42
`

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenProm {
		t.Fatalf("Prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenProm)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	// Structural golden: decode and verify the load-bearing fields, so the
	// test does not break on JSON indentation details.
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels map[string]string  `json:"labels"`
				Value  *float64           `json:"value"`
				Count  *uint64            `json:"count"`
				Sum    *float64           `json:"sum"`
				Min    *float64           `json:"min"`
				Max    *float64           `json:"max"`
				Q      map[string]float64 `json:"quantiles"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("got %d metrics, want 3", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "varpower_budget_residual_watts" || doc.Metrics[0].Type != "gauge" ||
		*doc.Metrics[0].Series[0].Value != -12.5 {
		t.Fatalf("gauge family wrong: %+v", doc.Metrics[0])
	}
	hist := doc.Metrics[1]
	if hist.Name != "varpower_mpi_rank_wait_seconds" || hist.Type != "histogram" {
		t.Fatalf("histogram family wrong: %+v", hist)
	}
	s := hist.Series[0]
	if s.Labels["bench"] != "mhd" || *s.Count != 5 || *s.Sum != 203.05 || *s.Min != 0.05 || *s.Max != 200 {
		t.Fatalf("histogram series wrong: %+v", s)
	}
	if s.Q["p0"] != 0.05 || s.Q["p100"] != 200 {
		t.Fatalf("histogram quantiles wrong: %+v", s.Q)
	}
	if doc.Metrics[2].Name != "varpower_rapl_clamp_events_total" || *doc.Metrics[2].Series[0].Value != 42 {
		t.Fatalf("counter family wrong: %+v", doc.Metrics[2])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "name,type,labels,field,value" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	wantRows := []string{
		`varpower_budget_residual_watts,gauge,"",value,-12.5`,
		`varpower_mpi_rank_wait_seconds,histogram,"bench=mhd",count,5`,
		`varpower_rapl_clamp_events_total,counter,"",value,42`,
	}
	for _, want := range wantRows {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("CSV missing row %q in:\n%s", want, buf.String())
		}
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"out.prom":    FormatPrometheus,
		"out.txt":     FormatPrometheus,
		"metrics":     FormatPrometheus,
		"out.json":    FormatJSON,
		"metrics.csv": FormatCSV,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Fatalf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"v": "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", buf.String())
	}
}
