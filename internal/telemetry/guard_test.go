package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramRejectsNonFinite is the regression test for the Observe
// guard: NaN, ±Inf and negative samples must be dropped (tallied in
// Dropped) without perturbing Count, Sum, Min, Max or any quantile.
func TestHistogramRejectsNonFinite(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e300} {
		h.Observe(bad)
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("rejected samples were recorded: %+v", s)
	}
	if s.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", s.Dropped)
	}
	if !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
		t.Fatalf("Min/Max perturbed by rejected samples: %+v", s)
	}
	if _, ok := s.Quantile(0.5); ok {
		t.Fatal("quantile reported ok on a histogram of only rejected samples")
	}

	// Valid samples still record, and the tally is cumulative.
	h.Observe(2)
	h.Observe(math.Inf(1))
	s = h.Snapshot()
	if s.Count != 1 || s.Sum != 2 || s.Min != 2 || s.Max != 2 {
		t.Fatalf("valid sample mis-recorded after rejections: %+v", s)
	}
	if s.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", s.Dropped)
	}
}

// TestConcurrentSpanEndOrdering starts spans in a known serial order, then
// ends them concurrently — including racing End calls on the same span —
// and asserts the tracer's invariants: the rendered tree keeps start (id)
// order regardless of completion order, each span's duration feeds the
// phase histogram exactly once, and Summary counts every span once.
func TestConcurrentSpanEndOrdering(t *testing.T) {
	reg := NewRegistry()
	clock := &fakeClock{t: time.Unix(2000, 0), step: time.Millisecond}
	tr := NewTracer(reg, clock.now)

	const n = 64
	root := tr.Start("batch")
	spans := make([]*Span, n)
	for i := range spans {
		spans[i] = root.Start(fmt.Sprintf("job%02d", i))
	}

	// End in scrambled order, every span raced by two goroutines.
	var wg sync.WaitGroup
	for i := range spans {
		sp := spans[(i*17+5)%n]
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sp.End()
			}()
		}
	}
	wg.Wait()
	root.End()

	// Idempotency: each job span observed exactly one duration.
	for i := range spans {
		h := reg.Histogram(PhaseDurationMetric, "", DefTimeBuckets,
			Labels{"phase": fmt.Sprintf("job%02d", i)})
		if s := h.Snapshot(); s.Count != 1 {
			t.Fatalf("job%02d recorded %d durations, want 1", i, s.Count)
		}
	}
	stats := tr.Summary()
	total := 0
	for _, s := range stats {
		total += s.Count
	}
	if total != n+1 {
		t.Fatalf("summary counts %d finished spans, want %d", total, n+1)
	}

	// The tree must list children in start order, not end order.
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n+1 {
		t.Fatalf("tree has %d lines, want %d:\n%s", len(lines), n+1, buf.String())
	}
	for i, line := range lines[1:] {
		want := fmt.Sprintf("job%02d", i)
		if !strings.Contains(line, want) {
			t.Fatalf("tree line %d = %q, want span %s (start order)", i+1, line, want)
		}
	}
}
