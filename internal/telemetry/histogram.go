package telemetry

import (
	"math"
	"sort"
	"sync"
)

// DefTimeBuckets is the default histogram layout for wall-clock durations
// in seconds: 1 µs to ~100 s, roughly quarter-decade spaced. It covers
// both the microsecond-scale per-task spans of the parallel engine and the
// multi-minute grid sweeps.
var DefTimeBuckets = ExpBuckets(1e-6, math.Sqrt(10), 17)

// WattBuckets is the default layout for power quantities (watts): 0.5 W to
// ~130 W, covering the per-module clamp magnitudes of every Table-1
// architecture.
var WattBuckets = ExpBuckets(0.5, math.Sqrt2, 17)

// SecondBuckets is a coarse layout for simulated per-rank times (virtual
// seconds): 10 ms to ~1000 s.
var SecondBuckets = ExpBuckets(0.01, math.Sqrt(10), 11)

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// and growing by factor. +Inf is implicit and must not be included.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram accumulates float64 observations into fixed buckets and
// tracks count, sum, min and max. It is safe for concurrent use, and —
// because bucket counts are commutative — its exported state does not
// depend on the order in which concurrent observers ran.
//
// Quantiles are estimated by linear interpolation inside the bucket that
// holds the target rank, clamped to the observed [min, max]; with a single
// sample every quantile is that sample, and p ≤ 0 / p ≥ 1 return the exact
// min / max.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit

	mu        sync.Mutex
	counts    []uint64 // len(bounds)+1; last is the +Inf bucket
	count     uint64
	sum       float64
	min       float64
	max       float64
	dropped   uint64     // rejected observations (NaN, ±Inf, negative)
	exemplars []Exemplar // lazily allocated, len(bounds)+1; last-wins per bucket
}

// Exemplar ties one concrete observation to the trace that produced it, so
// a histogram bucket on a dashboard links to a request trace. A zero
// TraceID means the bucket has no exemplar.
type Exemplar struct {
	TraceID string
	Value   float64
}

// newHistogram builds a histogram with the given upper bounds (copied,
// sorted ascending).
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]uint64, len(bs)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one sample. Every histogram in this repository measures a
// non-negative physical quantity (durations, watts, simulated seconds), so
// NaN, ±Inf and negative samples are rejected — a single such value would
// otherwise poison Sum/Min/Max and every quantile derived from them.
// Rejections are tallied in the snapshot's Dropped count.
func (h *Histogram) Observe(v float64) { h.ObserveWithExemplar(v, "") }

// ObserveWithExemplar records one sample and, when traceID is non-empty,
// pins it as the bucket's exemplar (last observation wins — recency is what
// makes an exemplar actionable). The same validity guard as Observe applies.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		h.mu.Lock()
		h.dropped++
		h.mu.Unlock()
		return
	}
	// Bucket index: first bound >= v, or the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.counts))
		}
		h.exemplars[i] = Exemplar{TraceID: traceID, Value: v}
	}
	h.mu.Unlock()
}

// HistSnapshot is a consistent copy of a histogram's state.
type HistSnapshot struct {
	Bounds  []float64 // upper bounds, ascending; +Inf implicit
	Counts  []uint64  // len(Bounds)+1, per-bucket (not cumulative)
	Count   uint64
	Sum     float64
	Min     float64 // +Inf when empty
	Max     float64 // -Inf when empty
	Dropped uint64  // observations rejected by the Observe guard
	// Exemplars is nil until an exemplar has been recorded, else
	// len(Counts) entries aligned with Counts (zero TraceID = none).
	Exemplars []Exemplar
}

// Snapshot returns a consistent copy.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds:  h.bounds,
		Counts:  make([]uint64, len(h.counts)),
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Dropped: h.dropped,
	}
	copy(s.Counts, h.counts)
	if h.exemplars != nil {
		s.Exemplars = make([]Exemplar, len(h.exemplars))
		copy(s.Exemplars, h.exemplars)
	}
	return s
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observations.
// ok is false when the histogram is empty. p ≤ 0 returns the exact
// minimum, p ≥ 1 the exact maximum; interior quantiles interpolate within
// the holding bucket and are clamped to [Min, Max].
func (s HistSnapshot) Quantile(p float64) (float64, bool) {
	if s.Count == 0 {
		return 0, false
	}
	if p <= 0 {
		return s.Min, true
	}
	if p >= 1 {
		return s.Max, true
	}
	// Nearest-rank target in [1, Count].
	target := uint64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if cum < target {
			continue
		}
		// Bucket i holds the target rank. Interpolate between the bucket's
		// effective bounds, clamped to the observed range so degenerate
		// buckets (single sample, +Inf bucket) stay exact.
		lo := s.Min
		if i > 0 {
			lo = math.Max(lo, s.Bounds[i-1])
		}
		hi := s.Max
		if i < len(s.Bounds) {
			hi = math.Min(hi, s.Bounds[i])
		}
		if hi <= lo {
			return lo, true
		}
		frac := float64(target-prev) / float64(c)
		return lo + (hi-lo)*frac, true
	}
	return s.Max, true
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
