package telemetry

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(DefTimeBuckets)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram: count=%d sum=%v", s.Count, s.Sum)
	}
	if !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
		t.Fatalf("empty histogram min/max: %v/%v", s.Min, s.Max)
	}
	for _, p := range []float64{0, 0.5, 1} {
		if _, ok := s.Quantile(p); ok {
			t.Fatalf("Quantile(%v) on empty histogram reported ok", p)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %v", s.Mean())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	h.Observe(7.25)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 7.25 || s.Min != 7.25 || s.Max != 7.25 {
		t.Fatalf("single-sample snapshot: %+v", s)
	}
	// Every quantile of one sample is that sample, exactly.
	for _, p := range []float64{0, 0.01, 0.5, 0.99, 1} {
		q, ok := s.Quantile(p)
		if !ok || q != 7.25 {
			t.Fatalf("Quantile(%v) = %v, %v; want 7.25", p, q, ok)
		}
	}
}

func TestHistogramP0P100Exact(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 10))
	for _, v := range []float64{3.5, 900, 0.125, 41, 17} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if q, _ := s.Quantile(0); q != 0.125 {
		t.Fatalf("p0 = %v, want exact min 0.125", q)
	}
	if q, _ := s.Quantile(1); q != 900 {
		t.Fatalf("p100 = %v, want exact max 900 (above the top bound, +Inf bucket)", q)
	}
	// Quantiles out of range clamp to the exact extremes too.
	if q, _ := s.Quantile(-3); q != 0.125 {
		t.Fatalf("p<0 = %v, want min", q)
	}
	if q, _ := s.Quantile(7); q != 900 {
		t.Fatalf("p>1 = %v, want max", q)
	}
}

func TestHistogramQuantileMonotoneAndBounded(t *testing.T) {
	h := newHistogram(DefTimeBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-4) // 0.1 ms .. 100 ms
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q, ok := s.Quantile(p)
		if !ok {
			t.Fatalf("Quantile(%v) not ok", p)
		}
		if q < prev {
			t.Fatalf("quantiles not monotone: p=%v q=%v < prev %v", p, q, prev)
		}
		if q < s.Min || q > s.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", p, q, s.Min, s.Max)
		}
		prev = q
	}
	// The median of a near-uniform sample should land near 50 ms; bucket
	// interpolation is coarse, so allow a wide band.
	if med, _ := s.Quantile(0.5); med < 0.02 || med > 0.08 {
		t.Fatalf("median %v implausible for uniform(0.0001, 0.1)", med)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("NaN was recorded: %+v", s)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("ExpBuckets len %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	if db := ExpBuckets(0, 2, 3); len(db) != 1 {
		t.Fatalf("degenerate ExpBuckets = %v", db)
	}
}
