package telemetry

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a lifecycle-managed HTTP server: Listen-then-serve on its own
// goroutine, graceful Shutdown on demand. It exists because two layers need
// the same careful teardown — the opt-in debug endpoint below and the
// varpowerd control plane (internal/service) — and a bare net.Listener plus
// a detached goroutine leaks the port on exit and cuts in-flight responses
// mid-body. Shutdown stops accepting, waits for running handlers up to the
// context deadline, and releases the port before returning.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{} // closed when Serve returns
	err  error         // Serve's terminal error (nil on clean shutdown)
}

// StartServer binds addr (e.g. ":9090" or "127.0.0.1:0") and serves h on a
// background goroutine until Shutdown or Close.
func StartServer(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		srv:  &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}

// Addr returns the bound listener address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes immediately (no
// new connections), in-flight handlers run to completion up to ctx's
// deadline, then the serve goroutine exits and the port is free for reuse.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err == nil {
		err = s.err
	}
	return err
}

// defaultDrain bounds Close's graceful drain: debug handlers are read-only
// snapshots, so anything still running after this is a stuck profile dump.
const defaultDrain = 5 * time.Second

// Kill is the ungraceful stop: the listener and every active connection
// close immediately, cutting in-flight responses mid-body. It exists for
// chaos harnesses that need a process-death stand-in; everything else
// should drain via Shutdown or Close.
func (s *Server) Kill() {
	_ = s.srv.Close()
	<-s.done
}

// Close is Shutdown with a short default drain timeout — the func() error
// shape the CLI teardown path wants.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), defaultDrain)
	defer cancel()
	return s.Shutdown(ctx)
}

// DebugMux builds the debug endpoint's routes:
//
//	/metrics      Prometheus text exposition of reg
//	/spans        the tracer's phase summary and span tree
//	/debug/vars   expvar (Go runtime memstats, cmdline)
//	/debug/pprof  the standard pprof profiles
//
// Handlers only read telemetry state, so serving them never interferes with
// simulation determinism. varpowerd mounts the /debug subtree of this mux
// next to its /v1 API.
func DebugMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = tracer.WriteSummary(w)
		fmt.Fprintln(w)
		_ = tracer.WriteTree(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the opt-in debug endpoint for long-running sweeps on addr and
// returns the bound listener address plus a shutdown func that drains
// gracefully (releasing the port) instead of cutting connections.
func Serve(addr string, reg *Registry, tracer *Tracer) (string, func() error, error) {
	s, err := StartServer(addr, DebugMux(reg, tracer))
	if err != nil {
		return "", nil, err
	}
	return s.Addr(), s.Close, nil
}
