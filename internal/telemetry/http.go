package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve starts the opt-in debug endpoint for long-running sweeps on addr
// (e.g. ":9090" or "127.0.0.1:0"). It serves
//
//	/metrics      Prometheus text exposition of reg
//	/spans        the tracer's phase summary and span tree
//	/debug/vars   expvar (Go runtime memstats, cmdline)
//	/debug/pprof  the standard pprof profiles
//
// and returns the bound listener address (useful with port 0) plus a
// shutdown func. The server runs on its own goroutine and serves until the
// process exits or close is called; it never interferes with simulation
// determinism — handlers only read telemetry state.
func Serve(addr string, reg *Registry, tracer *Tracer) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = tracer.WriteSummary(w)
		fmt.Fprintln(w)
		_ = tracer.WriteTree(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
