package telemetry

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeGracefulShutdownReleasesPort starts the debug endpoint, hits
// /metrics, shuts it down, and proves the port is immediately reusable —
// the leak the bare-listener implementation had.
func TestServeGracefulShutdownReleasesPort(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("varpower_test_total", "test counter", nil).Inc()
	tr := NewTracer(reg, time.Now)

	addr, stop, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "varpower_test_total") {
		t.Fatalf("/metrics missing registered counter:\n%s", body)
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must be free the moment stop returns.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after shutdown: %v", err)
	}
	ln.Close()
}

// TestStartServerShutdownWaitsForInflight proves Shutdown is graceful: a
// handler that is mid-response when Shutdown begins still completes.
func TestStartServerShutdownWaitsForInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	})
	s, err := StartServer("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	<-entered
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener, then release the handler.
	time.Sleep(20 * time.Millisecond)
	close(release)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request cut by shutdown: %v", r.err)
	}
	if r.body != "done" {
		t.Fatalf("in-flight response truncated: %q", r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
