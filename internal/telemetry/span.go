package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// PhaseDurationMetric is the histogram family every finished span's
// duration is recorded into, labeled by phase (the span name). Span names
// must therefore stay low-cardinality — per-item detail goes into
// Span.Annotate, which only affects the rendered tree, not metric labels.
const PhaseDurationMetric = "varpower_phase_duration_seconds"

// spanCap bounds how many finished spans a tracer retains for tree
// rendering. Durations past the cap still reach the phase histogram; only
// the per-span record is dropped (and counted).
const spanCap = 16384

// Span is one timed phase of the pipeline. Spans form a tree: children
// created with (*Span).Start render nested under their parent.
type Span struct {
	tr     *Tracer
	id     int
	parent int // 0 = root
	Name   string
	Detail string
	start  time.Time
	dur    time.Duration
	done   bool
}

// Tracer collects phase spans. All methods are safe for concurrent use.
// The zero value is not usable; use NewTracer or the package-level
// StartSpan, which uses the process-wide tracer publishing into the
// default registry.
type Tracer struct {
	reg *Registry
	now func() time.Time

	mu      sync.Mutex
	seq     int
	spans   []*Span // finished and in-flight, creation order
	dropped int
}

// NewTracer returns a tracer that records span durations into reg's
// phase-duration histogram. now overrides the clock (nil = time.Now) —
// tests inject a fake clock for golden output.
func NewTracer(reg *Registry, now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{reg: reg, now: now}
}

// defaultTracer is the process-wide tracer.
var defaultTracer = NewTracer(defaultRegistry, nil)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan starts a root span on the process-wide tracer.
func StartSpan(name string) *Span { return defaultTracer.Start(name) }

// Start begins a root span.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent int) *Span {
	t.mu.Lock()
	t.seq++
	sp := &Span{tr: t, id: t.seq, parent: parent, Name: name, start: t.now()}
	if len(t.spans) < spanCap {
		t.spans = append(t.spans, sp)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return sp
}

// Start begins a child span.
func (s *Span) Start(name string) *Span { return s.tr.start(name, s.id) }

// Annotate attaches free-form detail shown in the rendered tree (not in
// metric labels, so cardinality stays bounded).
func (s *Span) Annotate(format string, args ...any) *Span {
	s.Detail = fmt.Sprintf(format, args...)
	return s
}

// End finishes the span, records its duration into the tracer's
// phase-duration histogram, and is idempotent.
func (s *Span) End() {
	s.tr.mu.Lock()
	if s.done {
		s.tr.mu.Unlock()
		return
	}
	s.done = true
	s.dur = s.tr.now().Sub(s.start)
	reg := s.tr.reg
	s.tr.mu.Unlock()
	if reg != nil {
		reg.Histogram(PhaseDurationMetric, "Wall-clock duration of pipeline phases.",
			DefTimeBuckets, Labels{"phase": s.Name}).Observe(s.dur.Seconds())
	}
}

// Duration returns the span's duration (0 until End).
func (s *Span) Duration() time.Duration {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.dur
}

// Reset drops all recorded spans. Intended for tests.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans, t.seq, t.dropped = nil, 0, 0
	t.mu.Unlock()
}

// PhaseStat is an aggregate over all spans sharing a name.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Summary aggregates finished spans by name, ordered by first appearance.
func (t *Tracer) Summary() []PhaseStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string]int)
	var out []PhaseStat
	for _, sp := range t.spans {
		if !sp.done {
			continue
		}
		i, ok := idx[sp.Name]
		if !ok {
			i = len(out)
			idx[sp.Name] = i
			out = append(out, PhaseStat{Name: sp.Name})
		}
		out[i].Count++
		out[i].Total += sp.dur
		if sp.dur > out[i].Max {
			out[i].Max = sp.dur
		}
	}
	return out
}

// WriteSummary renders the per-phase aggregate as an aligned text table.
func (t *Tracer) WriteSummary(w io.Writer) error {
	stats := t.Summary()
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "telemetry: no finished spans")
		return err
	}
	width := len("phase")
	for _, s := range stats {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %7s  %12s  %12s  %12s\n", width, "phase", "count", "total", "mean", "max"); err != nil {
		return err
	}
	for _, s := range stats {
		mean := s.Total / time.Duration(s.Count)
		if _, err := fmt.Fprintf(w, "%-*s  %7d  %12v  %12v  %12v\n",
			width, s.Name, s.Count, s.Total.Round(time.Microsecond),
			mean.Round(time.Microsecond), s.Max.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

// WriteTree renders the span hierarchy, children indented under parents in
// start order. Unfinished spans render with "…" in place of a duration.
func (t *Tracer) WriteTree(w io.Writer) error {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	children := make(map[int][]*Span)
	for _, sp := range spans {
		children[sp.parent] = append(children[sp.parent], sp)
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool { return cs[i].id < cs[j].id })
	}
	var render func(parent, depth int) error
	render = func(parent, depth int) error {
		for _, sp := range children[parent] {
			dur := "…"
			if sp.done {
				dur = sp.dur.Round(time.Microsecond).String()
			}
			detail := ""
			if sp.Detail != "" {
				detail = "  [" + sp.Detail + "]"
			}
			if _, err := fmt.Fprintf(w, "%s%s  %s%s\n", strings.Repeat("  ", depth), sp.Name, dur, detail); err != nil {
				return err
			}
			if err := render(sp.id, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := render(0, 0); err != nil {
		return err
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "(… %d spans past the %d-span cap not shown)\n", dropped, spanCap); err != nil {
			return err
		}
	}
	return nil
}
