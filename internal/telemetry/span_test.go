package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing instants, one step per call.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func TestSpanHierarchyAndDurations(t *testing.T) {
	reg := NewRegistry()
	clock := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	tr := NewTracer(reg, clock.now)

	root := tr.Start("pipeline").Annotate("bench=%s", "mhd")
	child := root.Start("solve")
	grand := child.Start("inner")
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	// Clock steps: start×3 then end×3, 1 ms apart → inner 1 ms,
	// solve 3 ms, pipeline 5 ms.
	if d := grand.Duration(); d != time.Millisecond {
		t.Fatalf("inner duration = %v, want 1ms", d)
	}
	if d := root.Duration(); d != 5*time.Millisecond {
		t.Fatalf("pipeline duration = %v, want 5ms", d)
	}

	var tree bytes.Buffer
	if err := tr.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	want := "pipeline  5ms  [bench=mhd]\n  solve  3ms\n    inner  1ms\n"
	if tree.String() != want {
		t.Fatalf("tree mismatch:\n--- got ---\n%s--- want ---\n%s", tree.String(), want)
	}

	// Every finished span fed the phase-duration histogram.
	for _, phase := range []string{"pipeline", "solve", "inner"} {
		h := reg.Histogram(PhaseDurationMetric, "", DefTimeBuckets, Labels{"phase": phase})
		if s := h.Snapshot(); s.Count != 1 {
			t.Fatalf("phase %q histogram count = %d, want 1", phase, s.Count)
		}
	}
}

func TestSpanSummaryAggregates(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(NewRegistry(), clock.now)
	for i := 0; i < 3; i++ {
		tr.Start("cell").End() // each takes one 1 ms step
	}
	stats := tr.Summary()
	if len(stats) != 1 || stats[0].Name != "cell" || stats[0].Count != 3 {
		t.Fatalf("summary = %+v", stats)
	}
	if stats[0].Total != 3*time.Millisecond || stats[0].Max != time.Millisecond {
		t.Fatalf("summary durations = %+v", stats[0])
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cell") || !strings.Contains(buf.String(), "3") {
		t.Fatalf("summary text: %s", buf.String())
	}
	tr.Reset()
	if len(tr.Summary()) != 0 {
		t.Fatal("Reset left spans behind")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(NewRegistry(), nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("worker")
				sp.Start("sub").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	stats := tr.Summary()
	total := 0
	for _, s := range stats {
		total += s.Count
	}
	if total != 1600 {
		t.Fatalf("finished spans = %d, want 1600", total)
	}
}

func TestDefaultTracerRecordsPhaseDurations(t *testing.T) {
	before := seriesCount(Default(), PhaseDurationMetric, Labels{"phase": "test.phase"})
	StartSpan("test.phase").End()
	after := seriesCount(Default(), PhaseDurationMetric, Labels{"phase": "test.phase"})
	if after != before+1 {
		t.Fatalf("default tracer did not record: before=%d after=%d", before, after)
	}
}

func seriesCount(r *Registry, name string, labels Labels) uint64 {
	return r.Histogram(name, "", DefTimeBuckets, labels).Snapshot().Count
}
