// Package telemetry is the simulation pipeline's runtime observability
// substrate: a dependency-free metrics registry (counters, gauges,
// histograms with quantiles; labeled, safe under the internal/parallel
// fan-out) plus a span tracer for phase timing (span.go) and exporters in
// Prometheus text, JSON and CSV form (export.go, http.go).
//
// The paper's argument rests on measuring what a power cap does to a
// machine — per-module power, delivered frequency, per-rank wait time
// (Figures 4–6) — and the hot paths of this reproduction now publish those
// quantities as metrics instead of discarding them after the final tables:
// hw/rapl counts clamp/throttle events and the power clamped away,
// hw/cpufreq counts frequency transitions, simmpi observes per-rank
// busy/wait histograms, core publishes the α and budget-residual gauges,
// and every pipeline phase records its wall-clock duration.
//
// Collection is always on and cheap (atomic adds; metric handles are
// resolved once at package init, never per event). Collection is also
// strictly write-only with respect to simulation state: enabling or
// draining telemetry cannot change any simulated result, which is what
// keeps the repo's bit-reproducibility contract intact (the determinism
// property tests run with telemetry active).
//
// This package is distinct from internal/trace, which synthesizes
// *simulated power time series* (per-module watts-over-virtual-seconds
// CSV, the paper's measurement campaigns); telemetry records *real*
// wall-clock spans and event counts of the simulator itself.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a set of name→value metric labels. Label sets are serialised
// in sorted key order, so two Labels values with equal contents always
// address the same series.
type Labels map[string]string

// key returns the canonical serialised form ("a=1,b=2").
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// clone returns an independent copy so callers cannot mutate a registered
// series' identity after the fact.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// MetricType discriminates the metric families.
type MetricType int

// Metric families.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// family is one named metric and all its labeled series.
type family struct {
	name, help string
	typ        MetricType
	buckets    []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
	order  []string // insertion order of series keys (stable export)
}

// series is one (name, labels) time series.
type series struct {
	labels Labels
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // insertion order of family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the instrumented packages
// publish into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family returns (creating if needed) the named family, enforcing type
// consistency: re-registering a name with a different type panics, because
// it is always a programming error in the instrumentation layer.
func (r *Registry) family(name, help string, typ MetricType, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, typ, f.typ))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// get returns (creating if needed) the series for the label set.
func (f *family) get(labels Labels) *series {
	k := labels.key()
	f.mu.RLock()
	s, ok := f.series[k]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[k]; ok {
		return s
	}
	s = &series{labels: labels.clone()}
	switch f.typ {
	case TypeCounter:
		s.ctr = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[k] = s
	f.order = append(f.order, k)
	return s
}

// Counter returns the counter for (name, labels), registering the family
// on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.family(name, help, TypeCounter, nil).get(labels).ctr
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.family(name, help, TypeGauge, nil).get(labels).gauge
}

// Histogram returns the histogram for (name, labels). buckets are the
// upper bounds (ascending; +Inf is implicit); nil selects DefTimeBuckets.
// The bucket layout is fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	return r.family(name, help, TypeHistogram, buckets).get(labels).hist
}

// Reset drops every family and series. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families = make(map[string]*family)
	r.order = nil
}

// SeriesSnapshot is one exported time series.
type SeriesSnapshot struct {
	Labels Labels
	Value  float64        // counters and gauges
	Hist   *HistSnapshot  // histograms
}

// FamilySnapshot is one exported metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Type   MetricType
	Series []SeriesSnapshot
}

// Gather snapshots every family, sorted by name, each family's series in
// first-registration order (deterministic for serial registration; label
// keys disambiguate otherwise).
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		snap := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		f.mu.RLock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.RUnlock()
		for _, s := range sers {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.typ {
			case TypeCounter:
				ss.Value = s.ctr.Value()
			case TypeGauge:
				ss.Value = s.gauge.Value()
			case TypeHistogram:
				h := s.hist.Snapshot()
				ss.Hist = &h
			}
			snap.Series = append(snap.Series, ss)
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
