package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // monotone: ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "help", nil)
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
}

func TestLabelIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"b": "2", "a": "1"})
	b := r.Counter("x_total", "", Labels{"a": "1", "b": "2"})
	if a != b {
		t.Fatal("equal label sets in different key order resolved to distinct series")
	}
	c := r.Counter("x_total", "", Labels{"a": "1"})
	if c == a {
		t.Fatal("different label sets shared a series")
	}
	// Mutating the caller's map must not corrupt the registered identity.
	l := Labels{"k": "v"}
	s1 := r.Counter("y_total", "", l)
	l["k"] = "other"
	s2 := r.Counter("y_total", "", Labels{"k": "v"})
	if s1 != s2 {
		t.Fatal("registered label identity followed caller-side mutation")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

// TestConcurrentRegistryMutation hammers family creation, series creation
// and metric recording from many goroutines; run under -race (CI does)
// this is the lock-safety proof for the PR-1 parallel engine.
func TestConcurrentRegistryMutation(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for gi := 0; gi < goroutines; gi++ {
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total", "h", nil).Inc()
				r.Counter("labeled_total", "h", Labels{"g": fmt.Sprint(gi % 4)}).Add(2)
				r.Gauge("gauge", "h", nil).Set(float64(i))
				r.Histogram("hist_seconds", "h", nil, Labels{"g": fmt.Sprint(gi % 2)}).Observe(float64(i) * 1e-3)
				if i%50 == 0 {
					_ = r.Gather() // concurrent export while mutating
				}
			}
		}(gi)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "", nil).Value(); got != goroutines*iters {
		t.Fatalf("shared counter = %v, want %d", got, goroutines*iters)
	}
	var labeled float64
	for _, g := range []string{"0", "1", "2", "3"} {
		labeled += r.Counter("labeled_total", "", Labels{"g": g}).Value()
	}
	if labeled != goroutines*iters*2 {
		t.Fatalf("labeled counters sum = %v, want %d", labeled, goroutines*iters*2)
	}
	var count uint64
	for _, g := range []string{"0", "1"} {
		count += r.Histogram("hist_seconds", "", nil, Labels{"g": g}).Snapshot().Count
	}
	if count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", count, goroutines*iters)
	}
}

func TestGatherSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z_metric", "", nil).Set(1)
	r.Counter("a_metric_total", "", nil).Inc()
	r.Histogram("m_hist", "", []float64{1}, nil).Observe(0.5)
	fams := r.Gather()
	if len(fams) != 3 {
		t.Fatalf("gathered %d families, want 3", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name >= fams[i].Name {
			t.Fatalf("families not sorted: %q >= %q", fams[i-1].Name, fams[i].Name)
		}
	}
	r.Reset()
	if len(r.Gather()) != 0 {
		t.Fatal("Reset left families behind")
	}
}
