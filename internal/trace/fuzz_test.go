package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV throws arbitrary text at the trace parser: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("module,seconds,watts\n0,0.0,100\n0,0.3,101\n")
	f.Add("module,seconds,watts\n")
	f.Add("garbage")
	f.Add("module,seconds,watts\n1,2,3\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		series, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, series); err != nil {
			t.Fatalf("accepted input failed to re-serialise: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if len(back) != len(series) {
			t.Fatalf("round trip changed series count %d -> %d", len(series), len(back))
		}
	})
}
