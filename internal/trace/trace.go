// Package trace synthesizes and exports per-module power time series from
// run results — the raw material behind the paper's scatter plots, in the
// form a measurement campaign would actually store it (per-module CSV
// traces sampled by one of the Table-1 back-ends).
//
// This package records *simulated power data* — an experiment artifact. It
// is one of three observability layers that share the word "trace" but
// nothing else:
//
//   - internal/trace (this package): simulated power data; output belongs
//     in a figure;
//   - internal/telemetry: instruments the simulator itself (metric
//     counters and phase spans about the pipeline's own execution,
//     exported via -metrics/-http); output belongs in a dashboard;
//   - internal/obs: per-request tracing, logging and SLO accounting for
//     the served control plane (varpowerd); output belongs in an incident
//     investigation — one request's span tree, not a series or a counter.
//
// See DESIGN.md §Observability and §13 for the full distinction.
//
// The simulation is steady-state per run, so a module's true trace is
// piecewise constant: full draw while its rank computes, reduced draw
// while it busy-polls in MPI waits at the end of the region. A sensor spec
// overlays sampling cadence, noise and calibration offset.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"varpower/internal/hw/sensors"
	"varpower/internal/measure"
	"varpower/internal/units"
)

// waitCPUFraction mirrors the accounting model in internal/hw/rapl: MPI
// busy-polling burns most of the compute-time CPU power.
const waitCPUFraction = 0.92

// Series is one module's sampled power trace.
type Series struct {
	ModuleID int
	Samples  []sensors.Sample
}

// FromRun builds sensor-sampled traces for every rank of a run. Each
// module's true signal is its operating-point module power until its rank
// stops computing, then the reduced busy-wait draw until the application
// ends; the spec's sensor (attached per module, deterministic in seed)
// samples it.
func FromRun(res measure.Result, spec sensors.Spec, seed uint64) []Series {
	out := make([]Series, 0, len(res.Ranks))
	for _, r := range res.Ranks {
		sensor := sensors.Attach(spec, seed, r.ModuleID)
		busyPower := r.Op.ModulePower()
		waitPower := units.Watts(float64(r.Op.CPUPower)*waitCPUFraction) + r.Op.DramPower
		busy := sensor.Trace(busyPower, r.Busy)
		tail := sensor.Trace(waitPower, res.Elapsed-r.Busy)
		samples := make([]sensors.Sample, 0, len(busy)+len(tail))
		samples = append(samples, busy...)
		for _, s := range tail {
			s.At += r.Busy
			samples = append(samples, s)
		}
		out = append(out, Series{ModuleID: r.ModuleID, Samples: samples})
	}
	return out
}

// WriteCSV writes the traces as long-form CSV: module,seconds,watts.
func WriteCSV(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "module,seconds,watts"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Samples {
			if _, err := fmt.Fprintf(bw, "%d,%.6f,%.3f\n", s.ModuleID, float64(p.At), float64(p.Power)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses traces written by WriteCSV, preserving module order of
// first appearance.
func ReadCSV(r io.Reader) ([]Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != "module,seconds,watts" {
		return nil, fmt.Errorf("trace: unexpected header %q", got)
	}
	index := map[int]int{}
	var out []Series
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: %d fields", line, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d module: %w", line, err)
		}
		at, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d seconds: %w", line, err)
		}
		watts, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d watts: %w", line, err)
		}
		i, ok := index[id]
		if !ok {
			i = len(out)
			index[id] = i
			out = append(out, Series{ModuleID: id})
		}
		out[i].Samples = append(out[i].Samples, sensors.Sample{
			At:    units.Seconds(at),
			Power: units.Watts(watts),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Average returns a series' mean power, or an error for an empty series.
func (s Series) Average() (units.Watts, error) {
	return sensors.Average(s.Samples)
}

// Energy integrates the trace (rectangle rule at the sampling interval),
// returning total joules. It requires at least two samples to infer the
// interval.
func (s Series) Energy() (units.Joules, error) {
	if len(s.Samples) < 2 {
		return 0, fmt.Errorf("trace: series for module %d too short to integrate", s.ModuleID)
	}
	dt := float64(s.Samples[1].At - s.Samples[0].At)
	if dt <= 0 {
		return 0, fmt.Errorf("trace: non-increasing timestamps for module %d", s.ModuleID)
	}
	var sum float64
	for _, p := range s.Samples {
		sum += float64(p.Power) * dt
	}
	return units.Joules(sum), nil
}
