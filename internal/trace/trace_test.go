package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"varpower/internal/cluster"
	"varpower/internal/hw/sensors"
	"varpower/internal/measure"
	"varpower/internal/units"
	"varpower/internal/workload"
)

func testRun(t *testing.T) (*cluster.System, measure.Result) {
	t.Helper()
	sys := cluster.MustNew(cluster.HA8K(), 4, 0x5c15)
	ids, _ := sys.AllocateFirst(4)
	res, err := measure.Run(sys, measure.Config{Bench: workload.MHD(), Modules: ids, Mode: measure.ModeUncapped})
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

func TestFromRunShape(t *testing.T) {
	_, res := testRun(t)
	series := FromRun(res, sensors.EMON, 1)
	if len(series) != 4 {
		t.Fatalf("series count %d", len(series))
	}
	for _, s := range series {
		if len(s.Samples) == 0 {
			t.Fatalf("module %d has no samples", s.ModuleID)
		}
		// Samples must be ordered in time and cover roughly the run.
		last := units.Seconds(-1)
		for _, p := range s.Samples {
			if p.At <= last {
				t.Fatalf("module %d timestamps not increasing", s.ModuleID)
			}
			last = p.At
		}
		if float64(last) < float64(res.Elapsed)*0.9 {
			t.Fatalf("module %d trace ends at %v, run elapsed %v", s.ModuleID, last, res.Elapsed)
		}
	}
}

func TestTraceAverageNearOpPower(t *testing.T) {
	_, res := testRun(t)
	series := FromRun(res, sensors.PowerInsight, 1)
	for i, s := range series {
		avg, err := s.Average()
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(res.Ranks[i].Op.ModulePower())
		// Busy-wait tails pull the average a little below the operating
		// point; sensor offset adds ±1 W.
		if float64(avg) > truth+2 || float64(avg) < truth*0.85 {
			t.Fatalf("module %d trace average %v vs op power %v", s.ModuleID, avg, truth)
		}
	}
}

func TestEnergyIntegration(t *testing.T) {
	_, res := testRun(t)
	series := FromRun(res, sensors.PowerInsight, 1)
	for i, s := range series {
		j, err := s.Energy()
		if err != nil {
			t.Fatal(err)
		}
		// Compare with the MSR-counter energy of the same rank; the trace
		// is a noisy resampling of the same signal.
		counter := float64(res.Ranks[i].PkgEnergy + res.Ranks[i].DramEnergy)
		if math.Abs(float64(j)-counter)/counter > 0.1 {
			t.Fatalf("module %d: trace energy %v vs counter %v", s.ModuleID, j, counter)
		}
	}
	short := Series{ModuleID: 0}
	if _, err := short.Energy(); err == nil {
		t.Error("empty series integrated")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	_, res := testRun(t)
	series := FromRun(res, sensors.EMON, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(series) {
		t.Fatalf("round trip series count %d vs %d", len(back), len(series))
	}
	for i := range back {
		if back[i].ModuleID != series[i].ModuleID {
			t.Fatal("module order lost")
		}
		if len(back[i].Samples) != len(series[i].Samples) {
			t.Fatal("sample count changed")
		}
		for j := range back[i].Samples {
			dp := math.Abs(float64(back[i].Samples[j].Power - series[i].Samples[j].Power))
			if dp > 0.001 {
				t.Fatalf("power changed by %v in round trip", dp)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,here\n1,0.0,10",
		"module,seconds,watts\nnot-a-number,0.0,10",
		"module,seconds,watts\n1,xx,10",
		"module,seconds,watts\n1,0.0,yy",
		"module,seconds,watts\n1,0.0",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
