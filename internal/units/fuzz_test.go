package units

import (
	"math"
	"testing"
)

// FuzzParseWatts feeds arbitrary strings to the power parser: it must
// never panic, and every accepted value must re-format to a string that
// parses back to (approximately) the same value.
func FuzzParseWatts(f *testing.F) {
	f.Add("115 W")
	f.Add("96kW")
	f.Add("-3 mW")
	f.Add("1e3")
	f.Add("")
	f.Add("kW")
	f.Fuzz(func(t *testing.T, input string) {
		w, err := ParseWatts(input)
		if err != nil {
			return
		}
		if math.IsNaN(float64(w)) {
			t.Fatalf("parsed NaN from %q", input)
		}
		if math.IsInf(float64(w), 0) || math.Abs(float64(w)) > 1e12 {
			return // formatting precision is not defined out there
		}
		back, err := ParseWatts(w.String())
		if err != nil {
			t.Fatalf("formatted value %q does not re-parse: %v", w.String(), err)
		}
		if float64(w) == 0 {
			if back != 0 {
				t.Fatalf("zero round-tripped to %v", back)
			}
			return
		}
		if math.Abs(float64(back-w))/math.Abs(float64(w)) > 1e-3 {
			t.Fatalf("round trip %q -> %v -> %v", input, w, back)
		}
	})
}

// FuzzParseHertz mirrors FuzzParseWatts for frequencies.
func FuzzParseHertz(f *testing.F) {
	f.Add("2.7GHz")
	f.Add("100 MHz")
	f.Add("x")
	f.Fuzz(func(t *testing.T, input string) {
		h, err := ParseHertz(input)
		if err != nil {
			return
		}
		if math.IsNaN(float64(h)) {
			t.Fatalf("parsed NaN from %q", input)
		}
	})
}
