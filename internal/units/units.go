// Package units defines the physical quantities used throughout varpower:
// power (watts), CPU frequency (hertz), and energy (joules), plus helpers
// for formatting and parsing them.
//
// All quantities are float64 wrappers rather than integer ticks because the
// simulation works with continuous power curves; precision loss at the
// scales involved (milliwatts to megawatts, kilohertz to gigahertz) is
// negligible and the arithmetic stays readable.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Watts is electrical power in watts.
type Watts float64

// Common power scales.
const (
	Milliwatt Watts = 1e-3
	Watt      Watts = 1
	Kilowatt  Watts = 1e3
	Megawatt  Watts = 1e6
)

// String formats the power with an auto-selected SI prefix.
func (w Watts) String() string {
	a := math.Abs(float64(w))
	switch {
	case a >= 1e6:
		return trimFloat(float64(w)/1e6) + " MW"
	case a >= 1e3:
		return trimFloat(float64(w)/1e3) + " kW"
	case a >= 1 || a == 0:
		return trimFloat(float64(w)) + " W"
	default:
		return trimFloat(float64(w)*1e3) + " mW"
	}
}

// KW returns the power in kilowatts.
func (w Watts) KW() float64 { return float64(w) / 1e3 }

// Hertz is CPU clock frequency in hertz.
type Hertz float64

// Common frequency scales.
const (
	Megahertz Hertz = 1e6
	Gigahertz Hertz = 1e9
)

// GHz returns the frequency in gigahertz.
func (h Hertz) GHz() float64 { return float64(h) / 1e9 }

// MHz returns the frequency in megahertz.
func (h Hertz) MHz() float64 { return float64(h) / 1e6 }

// String formats the frequency with an auto-selected SI prefix.
func (h Hertz) String() string {
	a := math.Abs(float64(h))
	switch {
	case a >= 1e9:
		return trimFloat(float64(h)/1e9) + " GHz"
	case a >= 1e6:
		return trimFloat(float64(h)/1e6) + " MHz"
	case a >= 1e3:
		return trimFloat(float64(h)/1e3) + " kHz"
	default:
		return trimFloat(float64(h)) + " Hz"
	}
}

// GHz constructs a frequency from a gigahertz value.
func GHz(v float64) Hertz { return Hertz(v * 1e9) }

// MHz constructs a frequency from a megahertz value.
func MHz(v float64) Hertz { return Hertz(v * 1e6) }

// Joules is energy in joules.
type Joules float64

// String formats the energy with an auto-selected SI prefix.
func (j Joules) String() string {
	a := math.Abs(float64(j))
	switch {
	case a >= 1e6:
		return trimFloat(float64(j)/1e6) + " MJ"
	case a >= 1e3:
		return trimFloat(float64(j)/1e3) + " kJ"
	default:
		return trimFloat(float64(j)) + " J"
	}
}

// Seconds is simulated wall-clock time. The simulator keeps its own virtual
// clock, so time.Duration (with its nanosecond integer resolution and
// ~292-year range) is replaced by a float64 second count.
type Seconds float64

// String formats the duration in seconds with millisecond precision.
func (s Seconds) String() string { return strconv.FormatFloat(float64(s), 'f', 3, 64) + " s" }

// Energy returns the energy accumulated by drawing power w for duration s.
func Energy(w Watts, s Seconds) Joules { return Joules(float64(w) * float64(s)) }

// AvgPower returns the average power given energy j over duration s.
// It returns 0 when s is 0 to avoid propagating NaNs into statistics.
func AvgPower(j Joules, s Seconds) Watts {
	if s == 0 {
		return 0
	}
	return Watts(float64(j) / float64(s))
}

// ParseWatts parses strings like "115", "115W", "115 W", "96kW", "1.2 MW".
func ParseWatts(s string) (Watts, error) {
	v, suffix, err := splitQuantity(s)
	if err != nil {
		return 0, fmt.Errorf("units: parse watts %q: %w", s, err)
	}
	switch strings.ToLower(suffix) {
	case "", "w":
		return Watts(v), nil
	case "mw":
		// "mW" is milliwatts, "MW" megawatts; disambiguate on original case.
		if strings.Contains(suffix, "M") {
			return Watts(v * 1e6), nil
		}
		return Watts(v * 1e-3), nil
	case "kw":
		return Watts(v * 1e3), nil
	default:
		return 0, fmt.Errorf("units: parse watts %q: unknown suffix %q", s, suffix)
	}
}

// ParseHertz parses strings like "2.7GHz", "2700 MHz", "1200000000".
func ParseHertz(s string) (Hertz, error) {
	v, suffix, err := splitQuantity(s)
	if err != nil {
		return 0, fmt.Errorf("units: parse hertz %q: %w", s, err)
	}
	switch strings.ToLower(suffix) {
	case "", "hz":
		return Hertz(v), nil
	case "khz":
		return Hertz(v * 1e3), nil
	case "mhz":
		return Hertz(v * 1e6), nil
	case "ghz":
		return Hertz(v * 1e9), nil
	default:
		return 0, fmt.Errorf("units: parse hertz %q: unknown suffix %q", s, suffix)
	}
}

// splitQuantity separates "12.5kW" into (12.5, "kW").
func splitQuantity(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			break
		}
		i--
	}
	num := strings.TrimSpace(s[:i])
	suffix := strings.TrimSpace(s[i:])
	if num == "" {
		return 0, "", fmt.Errorf("no numeric part")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, "", err
	}
	return v, suffix, nil
}

// trimFloat renders v with up to three decimals, dropping trailing zeros.
func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Clamp returns v restricted to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b: a + t*(b-a).
func Lerp(a, b, t float64) float64 { return a + t*(b-a) }

// InvLerp returns the t for which Lerp(a, b, t) == v. It returns 0 when
// a == b so that degenerate ranges behave as "always at the low end".
func InvLerp(a, b, v float64) float64 {
	if a == b {
		return 0
	}
	return (v - a) / (b - a)
}
