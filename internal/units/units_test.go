package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWattsString(t *testing.T) {
	cases := []struct {
		in   Watts
		want string
	}{
		{0, "0 W"},
		{115, "115 W"},
		{96e3, "96 kW"},
		{1.5e6, "1.5 MW"},
		{0.25, "250 mW"},
		{-2e3, "-2 kW"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Watts(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestHertzString(t *testing.T) {
	cases := []struct {
		in   Hertz
		want string
	}{
		{GHz(2.7), "2.7 GHz"},
		{MHz(100), "100 MHz"},
		{1500, "1.5 kHz"},
		{12, "12 Hz"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Hertz.String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseWatts(t *testing.T) {
	cases := []struct {
		in   string
		want Watts
	}{
		{"115", 115},
		{"115W", 115},
		{"115 W", 115},
		{"96kW", 96e3},
		{"96 kw", 96e3},
		{"1.5 MW", 1.5e6},
		{"250mW", 0.25},
	}
	for _, c := range cases {
		got, err := ParseWatts(c.in)
		if err != nil {
			t.Fatalf("ParseWatts(%q): %v", c.in, err)
		}
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("ParseWatts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "watts", "12 XW", "kW"} {
		if _, err := ParseWatts(bad); err == nil {
			t.Errorf("ParseWatts(%q) succeeded, want error", bad)
		}
	}
}

func TestParseHertz(t *testing.T) {
	cases := []struct {
		in   string
		want Hertz
	}{
		{"2.7GHz", GHz(2.7)},
		{"2700 MHz", GHz(2.7)},
		{"1200000000", GHz(1.2)},
		{"100 kHz", 100e3},
	}
	for _, c := range cases {
		got, err := ParseHertz(c.in)
		if err != nil {
			t.Fatalf("ParseHertz(%q): %v", c.in, err)
		}
		if math.Abs(float64(got-c.want)) > 1e-3 {
			t.Errorf("ParseHertz(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseHertz("5 parsecs"); err == nil {
		t.Error("ParseHertz with bad suffix succeeded")
	}
}

func TestParseWattsRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		w := Watts(math.Abs(math.Mod(v, 1e7)))
		got, err := ParseWatts(w.String())
		if err != nil {
			return false
		}
		if float64(w) == 0 {
			return got == 0
		}
		return math.Abs(float64(got-w))/math.Abs(float64(w)) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAndAvgPower(t *testing.T) {
	j := Energy(100, 30)
	if j != 3000 {
		t.Fatalf("Energy(100W, 30s) = %v, want 3000 J", j)
	}
	if p := AvgPower(j, 30); p != 100 {
		t.Fatalf("AvgPower round-trip = %v, want 100 W", p)
	}
	if p := AvgPower(j, 0); p != 0 {
		t.Fatalf("AvgPower over zero time = %v, want 0", p)
	}
}

func TestClampLerpInvLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
	if Lerp(10, 20, 0.5) != 15 {
		t.Fatal("Lerp midpoint wrong")
	}
	if InvLerp(10, 20, 15) != 0.5 {
		t.Fatal("InvLerp midpoint wrong")
	}
	if InvLerp(7, 7, 7) != 0 {
		t.Fatal("InvLerp degenerate range should be 0")
	}
	// Lerp and InvLerp invert each other on non-degenerate ranges.
	f := func(a, b, tt float64) bool {
		if !isFinite(a) || !isFinite(b) || !isFinite(tt) || a == b {
			return true
		}
		tt = math.Mod(math.Abs(tt), 1)
		v := Lerp(a, b, tt)
		back := InvLerp(a, b, v)
		return math.Abs(back-tt) < 1e-6 || math.Abs(v) > 1e12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 }

func TestSecondsAndJoulesString(t *testing.T) {
	if got := Seconds(1.5).String(); got != "1.500 s" {
		t.Errorf("Seconds.String() = %q", got)
	}
	if got := Joules(2500).String(); got != "2.5 kJ" {
		t.Errorf("Joules.String() = %q", got)
	}
	if got := Joules(3.2e6).String(); got != "3.2 MJ" {
		t.Errorf("Joules.String() = %q", got)
	}
}

func TestKWAndGHzAccessors(t *testing.T) {
	if Watts(96e3).KW() != 96 {
		t.Error("KW accessor wrong")
	}
	if GHz(2.7).GHz() != 2.7 {
		t.Error("GHz accessor wrong")
	}
	if MHz(2700).GHz() != 2.7 {
		t.Error("MHz constructor wrong")
	}
}
