// Package variability models the manufacturing variation that the paper
// measures on production systems (Section 2.1, Section 4).
//
// Each module (a CPU socket plus its DRAM) receives a set of latent factors
// drawn once, deterministically, from the system seed and the module ID:
//
//   - Leak: scales static/leakage CPU power. Lithographic distortions in
//     channel length and film thickness change threshold voltage and hence
//     subthreshold leakage; this is the dominant die-to-die power effect and
//     is modelled as lognormal.
//   - Dyn: scales dynamic (switching) CPU power — effective capacitance
//     variation. Smaller, modelled as a truncated normal around 1.
//   - Dram: scales DRAM power. The paper observes much larger DRAM power
//     variation (Vp ≈ 2.8 versus ≈ 1.3 for modules), so this lognormal is
//     wide.
//   - TurboMul: scales the maximum achievable turbo frequency. Zero spread
//     for frequency-binned parts (Intel, IBM); non-zero for Teller's AMD
//     Piledriver, where Turbo Core gives leakier (higher-power) parts more
//     frequency headroom — reproducing the paper's observed *negative*
//     correlation between slowdown and power on Teller.
//
// A workload-specific residual (Residual) captures the fact that two
// workloads do not load a given die identically: module k may draw 1.2× the
// average on *STREAM* but 1.17× on NPB-BT. This residual is what limits the
// accuracy of PVT-based calibration (Section 5.3: < 5% typical, ~10% for
// NPB-BT) and therefore what separates VaPc from the oracle VaPcOr.
package variability

import (
	"fmt"
	"math"

	"varpower/internal/xrand"
)

// Factors holds one module's latent manufacturing-variation factors. All
// factors are multiplicative scales with population mean ≈ 1.
type Factors struct {
	Leak     float64 // static/leakage CPU power scale
	Dyn      float64 // dynamic CPU power scale
	Dram     float64 // DRAM power scale
	TurboMul float64 // max turbo frequency scale (1.0 on binned parts)
}

// Profile is the generative description of an architecture's variation.
// Values are calibrated per system so that population statistics match the
// paper's measurements (e.g. 23% max CPU power increase on Cab, 11% on
// Vulcan, 21% power / 17% performance on Teller, module Vp ≈ 1.3 and DRAM
// Vp ≈ 2.8 on HA8K).
type Profile struct {
	// LeakSigma is the lognormal sigma of the leakage factor.
	LeakSigma float64
	// DynSigma is the (truncated) normal sigma of the dynamic factor.
	DynSigma float64
	// DramSigma is the lognormal sigma of the DRAM factor.
	DramSigma float64
	// TurboSpread is the full ±range of the turbo multiplier; 0 means the
	// parts are frequency-binned and all reach the same turbo ceiling.
	TurboSpread float64
	// TurboLeakCorr in [-1, 1] correlates the turbo multiplier with the
	// leakage factor. Positive values make leaky (power-hungry) parts
	// faster, which produces Teller's negative slowdown/power correlation.
	TurboLeakCorr float64
}

// Validate reports an error for physically meaningless profiles.
func (p Profile) Validate() error {
	switch {
	case p.LeakSigma < 0 || p.DynSigma < 0 || p.DramSigma < 0:
		return fmt.Errorf("variability: negative sigma in profile %+v", p)
	case p.TurboSpread < 0:
		return fmt.Errorf("variability: negative turbo spread %v", p.TurboSpread)
	case p.TurboLeakCorr < -1 || p.TurboLeakCorr > 1:
		return fmt.Errorf("variability: turbo/leak correlation %v outside [-1,1]", p.TurboLeakCorr)
	}
	return nil
}

// Generate draws the factors for one module. The draw depends only on
// (seed, moduleID, profile), so module identities are stable across runs,
// processes, and evaluation orders.
func Generate(seed uint64, moduleID int, p Profile) Factors {
	return draw(xrand.NewKeyed(seed, 0x6d6f64756c65 /* "module" */, uint64(moduleID)), p)
}

// GenerateDomain draws the factors for device deviceID of a non-CPU device
// class (e.g. "gpu"). The stream is keyed by the domain name, so a GPU and
// a CPU module sharing an ID on the same system draw independent factors,
// and adding a device class to a spec never perturbs the existing module
// population.
func GenerateDomain(seed uint64, domain string, deviceID int, p Profile) Factors {
	return draw(xrand.NewKeyed(seed, 0x646576636c73 /* "devcls" */, xrand.HashString(domain), uint64(deviceID)), p)
}

// draw realises a profile from an already-keyed stream. The draw order is
// part of the determinism contract: changing it would re-identify every
// module of every system.
func draw(rng *xrand.Stream, p Profile) Factors {
	// zLeak is kept explicitly so the turbo multiplier can correlate with it.
	zLeak := rng.Normal(0, 1)
	zTurbo := rng.Normal(0, 1)
	f := Factors{
		Leak: lognormFromZ(zLeak, p.LeakSigma),
		Dyn:  clampPositive(1 + p.DynSigma*rng.TruncNormal(0, 1, -3.5, 3.5)),
		Dram: rng.LogNormal(0, p.DramSigma),
	}
	if p.TurboSpread == 0 {
		f.TurboMul = 1
	} else {
		c := p.TurboLeakCorr
		z := c*zLeak + sqrt1m(c)*zTurbo
		// Spread is interpreted as ±spread/2 over ±2σ of z.
		f.TurboMul = clampPositive(1 + p.TurboSpread/4*z)
	}
	return f
}

// Residual returns the multiplicative deviation of this module's power on a
// particular workload from what its latent factors predict, with the given
// workload-specific sigma. It is deterministic in (seed, moduleID,
// workload), so repeated runs of the same benchmark see the same residual —
// matching the paper's observation that EP varies < 0.5% across 15
// iterations on the same socket while differing across sockets.
func Residual(seed uint64, moduleID int, workload string, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	rng := xrand.NewKeyed(seed, 0x7265736964 /* "resid" */, uint64(moduleID), xrand.HashString(workload))
	return rng.LogNormal(0, sigma)
}

// lognormFromZ builds a lognormal(0, sigma) sample from a standard normal z,
// mean-corrected so the population mean is 1 rather than exp(sigma²/2).
func lognormFromZ(z, sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma*z - sigma*sigma/2)
}

func sqrt1m(c float64) float64 {
	v := 1 - c*c
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

func clampPositive(v float64) float64 {
	if v < 0.05 {
		return 0.05
	}
	return v
}
