package variability

import (
	"math"
	"testing"

	"varpower/internal/stats"
)

var testProfile = Profile{
	LeakSigma: 0.13, DynSigma: 0.032, DramSigma: 0.15,
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 7, testProfile)
	b := Generate(42, 7, testProfile)
	if a != b {
		t.Fatalf("same (seed, module) produced %+v vs %+v", a, b)
	}
	c := Generate(42, 8, testProfile)
	if a == c {
		t.Fatal("distinct modules produced identical factors")
	}
	d := Generate(43, 7, testProfile)
	if a == d {
		t.Fatal("distinct seeds produced identical factors")
	}
}

func TestPopulationMeansNearOne(t *testing.T) {
	const n = 5000
	var leak, dyn, dram []float64
	for i := 0; i < n; i++ {
		f := Generate(1, i, testProfile)
		leak = append(leak, f.Leak)
		dyn = append(dyn, f.Dyn)
		dram = append(dram, f.Dram)
	}
	for name, xs := range map[string][]float64{"leak": leak, "dyn": dyn, "dram": dram} {
		m := stats.Mean(xs)
		if math.Abs(m-1) > 0.02 {
			t.Errorf("%s population mean = %v, want ≈ 1", name, m)
		}
	}
	// The DRAM factor must spread far wider than the dynamic factor — the
	// paper's Vp ≈ 2.8 versus ≈ 1.3.
	if stats.Variation(dram) < 2*stats.Variation(dyn) {
		t.Errorf("DRAM spread (%.2f) not much wider than dyn spread (%.2f)",
			stats.Variation(dram), stats.Variation(dyn))
	}
}

func TestFactorsPositive(t *testing.T) {
	wide := Profile{LeakSigma: 0.5, DynSigma: 0.4, DramSigma: 0.6, TurboSpread: 0.5, TurboLeakCorr: -1}
	for i := 0; i < 2000; i++ {
		f := Generate(2, i, wide)
		if f.Leak <= 0 || f.Dyn <= 0 || f.Dram <= 0 || f.TurboMul <= 0 {
			t.Fatalf("non-positive factor at module %d: %+v", i, f)
		}
	}
}

func TestBinnedTurbo(t *testing.T) {
	for i := 0; i < 100; i++ {
		if f := Generate(3, i, testProfile); f.TurboMul != 1 {
			t.Fatalf("binned profile has turbo spread: %+v", f)
		}
	}
}

func TestTurboLeakCorrelation(t *testing.T) {
	p := testProfile
	p.TurboSpread = 0.12
	p.TurboLeakCorr = 0.75
	var leak, turbo []float64
	for i := 0; i < 4000; i++ {
		f := Generate(4, i, p)
		leak = append(leak, f.Leak)
		turbo = append(turbo, f.TurboMul)
	}
	c := stats.Correlation(leak, turbo)
	if c < 0.5 {
		t.Fatalf("turbo/leak correlation = %v, want strongly positive", c)
	}
	p.TurboLeakCorr = 0
	leak, turbo = leak[:0], turbo[:0]
	for i := 0; i < 4000; i++ {
		f := Generate(5, i, p)
		leak = append(leak, f.Leak)
		turbo = append(turbo, f.TurboMul)
	}
	if c := stats.Correlation(leak, turbo); math.Abs(c) > 0.1 {
		t.Fatalf("uncorrelated profile shows correlation %v", c)
	}
}

func TestResidual(t *testing.T) {
	if Residual(1, 2, "bench", 0) != 1 {
		t.Fatal("zero-sigma residual must be exactly 1")
	}
	a := Residual(1, 2, "bench", 0.05)
	if a == Residual(1, 2, "other", 0.05) {
		t.Fatal("residual ignores workload")
	}
	if a != Residual(1, 2, "bench", 0.05) {
		t.Fatal("residual not deterministic")
	}
	// Population statistics: lognormal with the requested sigma.
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, math.Log(Residual(1, i, "bench", 0.05)))
	}
	s := stats.MustSummarize(xs)
	if math.Abs(s.Std-0.05) > 0.005 {
		t.Fatalf("residual log-sigma = %v, want ≈ 0.05", s.Std)
	}
}

func TestProfileValidate(t *testing.T) {
	good := testProfile
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{LeakSigma: -0.1},
		{DynSigma: -1},
		{DramSigma: -0.5},
		{TurboSpread: -0.2},
		{TurboLeakCorr: 1.5},
		{TurboLeakCorr: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}
