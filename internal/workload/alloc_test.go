package workload

import (
	"testing"

	"varpower/internal/simmpi"
	"varpower/internal/units"
)

// The budgets below are explicit failing bounds, not measurements: programs
// pre-box their per-rank ops at build time, so serving rounds is
// allocation-free, and a whole DES run allocates only its result and two
// scratch slices. A regression that reintroduces per-round boxing (the old
// 36%-of-all-allocations hot spot) trips these immediately.

// TestRoundAllocBudget: Program.Round must return pre-built ops for every
// communication pattern — zero allocations per round, any rank, any phase.
func TestRoundAllocBudget(t *testing.T) {
	for _, b := range []*Benchmark{DGEMM(), MHD(), MVMC(), EP()} {
		prog, err := b.Program(64, 42)
		if err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(100, func() {
			for r := 0; r < 4; r++ {
				for rank := 0; rank < 64; rank++ {
					_ = prog.Round(rank, r)
				}
			}
		})
		if avg != 0 {
			t.Errorf("%s: %.1f allocs per 256 Round calls, budget 0", b.Name, avg)
		}
	}
}

// TestCollectiveRunAllocBudget: one full simmpi run — every compute round,
// halo exchange or collective, and the finalize barrier — must stay within
// a fixed handful of allocations (the per-rank result slice and the
// runtime's two reusable scratch slices), independent of round count.
func TestCollectiveRunAllocBudget(t *testing.T) {
	model := simmpi.ModelFunc(func(rank int, cycles, bytes float64) units.Seconds {
		return units.Seconds(cycles / 2.7e9)
	})
	for _, b := range []*Benchmark{MHD(), MVMC(), EP()} {
		prog, err := b.Program(64, 42)
		if err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(20, func() {
			if _, err := simmpi.Run(prog, 64, model, simmpi.DefaultNetwork); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 8 {
			t.Errorf("%s: %.1f allocs per run, budget 8", b.Name, avg)
		}
	}
}
