package workload

import (
	"fmt"
	"sort"

	"varpower/internal/hw/module"
)

// Benchmark constructors. Wattage coefficients are the HA8K-average-module
// calibration described in the package documentation; see DESIGN.md §2 for
// the constraints each number satisfies (uncapped draw, fmin draw, and the
// Table-4 feasibility boundaries).

// DGEMM returns the *DGEMM model: the HPC Challenge thread-parallel matrix
// multiply (12,288² per socket, Intel MKL). Compute-bound, embarrassingly
// parallel, the most power-hungry benchmark — uncapped it rides the
// platform power ceiling (Figure 2(i): CPU σ ≈ 0.25 W).
func DGEMM() *Benchmark {
	return &Benchmark{
		Name:        "*DGEMM",
		Description: "HPCC matrix multiply (MKL, 12288x12288), compute-bound, no synchronisation",
		Profile: module.PowerProfile{
			Workload: "*DGEMM",
			DynPower: 71.9, StaticPower: 24.1,
			DramBase: 6.0, DramDyn: 6.0,
			ResidualSigma: 0.015,
		},
		Iterations:    30,
		CyclesPerIter: 2.565e9, // ≈0.95 s/iter of frequency-scaled work at 2.7 GHz
		BytesPerIter:  2.5e9,   // ≈5% of iteration time in memory traffic
		Comm:          CommNone,
	}
}

// StarSTREAM returns the *STREAM model: AVX-optimised sustainable-bandwidth
// vectors (24 GB per module). Memory-bound but still frequency-sensitive
// through the uncore; the paper uses it as the PVT microbenchmark because
// it loads CPU and DRAM at the same time.
func StarSTREAM() *Benchmark {
	return &Benchmark{
		Name:        "*STREAM",
		Description: "HPCC sustainable memory bandwidth (AVX, 24 GB vectors), memory-bound, no synchronisation",
		Profile: module.PowerProfile{
			Workload: "*STREAM",
			DynPower: 20.0, StaticPower: 58.0,
			DramBase: 21.7, DramDyn: 4.2,
			ResidualSigma: 0.010,
		},
		Iterations:    50,
		CyclesPerIter: 0.27e9,
		BytesPerIter:  15e9,
		Comm:          CommNone,
	}
}

// EP returns the NPB Embarrassingly Parallel model (Class D): Gaussian
// variate generation, cache-resident, CPU-bound, one final reduction. The
// paper's probe workload for the Figure-1 cross-machine study.
func EP() *Benchmark {
	return &Benchmark{
		Name:        "NPB-EP",
		Description: "NAS EP class D: Marsaglia polar random variates, cache-resident, final reduction only",
		Profile: module.PowerProfile{
			Workload: "NPB-EP",
			DynPower: 55.0, StaticPower: 10.0,
			DramBase: 2.0, DramDyn: 2.0,
			ResidualSigma: 0.010,
		},
		Iterations:    10,
		CyclesPerIter: 2.7e9,
		Comm:          CommFinalReduce,
		MsgBytes:      64,
	}
}

// MHD returns the magneto-hydro-dynamics model: 3-D Modified-Leapfrog
// space-plasma simulation with nearest-neighbour MPI_Sendrecv exchange
// every iteration — the paper's exemplar of synchronisation hiding
// per-rank variation (Figures 2(iii) and 3).
func MHD() *Benchmark {
	return &Benchmark{
		Name:        "MHD",
		Description: "3-D MHD (Modified Leapfrog) space-weather code, halo exchange every step",
		Profile: module.PowerProfile{
			Workload: "MHD",
			DynPower: 51.3, StaticPower: 25.6,
			DramBase: 5.5, DramDyn: 6.7,
			ResidualSigma: 0.020,
		},
		Iterations:    200,
		CyclesPerIter: 0.432e9,
		BytesPerIter:  2.0e9,
		Comm:          CommHalo3D,
		MsgBytes:      256 << 10,
	}
}

// BT returns the NPB Block-Tridiagonal multizone model (Class E): halo
// exchange with static zone-size imbalance. Its power behaviour tracks the
// latent factors worst of all benchmarks (ResidualSigma ≈ 0.05), making it
// the paper's worst calibration case (~10% PMT error) and its largest
// speedup case (5.4× at 96 kW).
func BT() *Benchmark {
	return &Benchmark{
		Name:        "NPB-BT",
		Description: "NAS BT-MZ class E: block tridiagonal solver, multizone halo exchange, imbalanced zones",
		Profile: module.PowerProfile{
			Workload: "NPB-BT",
			DynPower: 42.0, StaticPower: 26.6,
			DramBase: 5.4, DramDyn: 6.5,
			ResidualSigma: 0.050,
		},
		Iterations:     150,
		CyclesPerIter:  0.6075e9,
		BytesPerIter:   3.75e9,
		Comm:           CommHalo3D,
		MsgBytes:       512 << 10,
		ImbalanceSigma: 0.05,
	}
}

// SP returns the NPB Scalar-Pentadiagonal multizone model (Class E).
func SP() *Benchmark {
	return &Benchmark{
		Name:        "NPB-SP",
		Description: "NAS SP-MZ class E: scalar pentadiagonal solver, multizone halo exchange",
		Profile: module.PowerProfile{
			Workload: "NPB-SP",
			DynPower: 41.0, StaticPower: 26.2,
			DramBase: 5.4, DramDyn: 6.5,
			ResidualSigma: 0.025,
		},
		Iterations:     150,
		CyclesPerIter:  0.5443e9,
		BytesPerIter:   3.92e9,
		Comm:           CommHalo3D,
		MsgBytes:       384 << 10,
		ImbalanceSigma: 0.04,
	}
}

// MVMC returns the mVMC-mini model (RIKEN FIBER suite, middle-scale
// setting): variational Monte Carlo with a global reduction per sample
// block.
func MVMC() *Benchmark {
	return &Benchmark{
		Name:        "mVMC",
		Description: "FIBER mVMC-mini: variational Monte Carlo for correlated electrons, allreduce per block",
		Profile: module.PowerProfile{
			Workload: "mVMC",
			DynPower: 40.0, StaticPower: 34.0,
			DramBase: 4.0, DramDyn: 5.0,
			ResidualSigma: 0.020,
		},
		Iterations:    100,
		CyclesPerIter: 0.6885e9,
		BytesPerIter:  2.25e9,
		Comm:          CommAllreduce,
		MsgBytes:      8 << 10,
	}
}

// PVTMicrobenchmark returns the microbenchmark used to build the
// system-level Power Variation Table. The paper uses *STREAM "because it
// exhibited both memory and CPU boundedness" (Section 5.3).
func PVTMicrobenchmark() *Benchmark { return StarSTREAM() }

// All returns the seven benchmark models in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{DGEMM(), StarSTREAM(), EP(), BT(), SP(), MHD(), MVMC()}
}

// Evaluated returns the six benchmarks of the evaluation section (Table 4
// and Figures 7–9) in the paper's row order.
func Evaluated() []*Benchmark {
	return []*Benchmark{DGEMM(), StarSTREAM(), MHD(), BT(), SP(), MVMC()}
}

// ByName looks up a benchmark by its exact or case-folded name; the NPB
// kernels also answer to their bare names ("bt" → NPB-BT).
func ByName(name string) (*Benchmark, error) {
	want := foldName(name)
	for _, b := range All() {
		if b.Name == name || foldName(b.Name) == want || foldName(b.Name) == "npb"+want {
			return b, nil
		}
	}
	var names []string
	for _, b := range All() {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
}

// foldName normalises benchmark names for lookup: lower case, stripping
// '*' and '-'.
func foldName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == '*' || c == '-':
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
