// Package workload models the paper's benchmarks (Section 3.3) as analytic
// applications: each benchmark is a point in the three-dimensional space
// that determines its behaviour under power caps —
//
//   - power draw: how hard it loads CPU (dynamic vs static share) and DRAM,
//   - frequency sensitivity: the split between frequency-scaled cycles and
//     bandwidth-bound memory traffic,
//   - synchronisation: none (*DGEMM, *STREAM), halo exchange every
//     iteration (MHD, NPB-BT/SP multizone), or collective reductions
//     (NPB-EP, mVMC).
//
// The wattage coefficients are calibrated to the paper's HA8K measurements
// (e.g. uncapped *DGEMM ≈ 100.8 W CPU / 12.0 W DRAM per module; MHD ≈
// 83.9 / 12.6) and to the Table-4 feasibility grid: a benchmark's module
// power at fmin decides which system-level constraints are infeasible ("–")
// and its uncapped draw decides which are not actually constraining ("•").
package workload

import (
	"fmt"
	"sort"

	"varpower/internal/hw/module"
	"varpower/internal/simmpi"
	"varpower/internal/units"
	"varpower/internal/xrand"
)

// CommPattern is a benchmark's synchronisation structure.
type CommPattern int

// Communication patterns.
const (
	// CommNone: ranks run independently (embarrassingly parallel).
	CommNone CommPattern = iota
	// CommHalo3D: nearest-neighbour Sendrecv on a 3-D torus every iteration.
	CommHalo3D
	// CommAllreduce: a global reduction every iteration.
	CommAllreduce
	// CommFinalReduce: a single reduction after all iterations.
	CommFinalReduce
)

// String names the pattern.
func (c CommPattern) String() string {
	switch c {
	case CommNone:
		return "none"
	case CommHalo3D:
		return "halo-3d"
	case CommAllreduce:
		return "allreduce"
	case CommFinalReduce:
		return "final-reduce"
	default:
		return fmt.Sprintf("CommPattern(%d)", int(c))
	}
}

// Benchmark is one application model.
type Benchmark struct {
	Name        string
	Description string

	// Profile carries the power coefficients (reference: HA8K's average
	// module; other architectures scale by TDP ratio via ProfileFor).
	Profile module.PowerProfile

	// Iterations of the main loop (between the paper's PMMD markers).
	Iterations int
	// CyclesPerIter is the frequency-scaled work per rank per iteration.
	CyclesPerIter float64
	// BytesPerIter is the bandwidth-bound memory traffic per rank per
	// iteration.
	BytesPerIter float64

	Comm CommPattern
	// MsgBytes is the per-peer message size for halo exchanges or the
	// reduction payload for collectives.
	MsgBytes float64

	// ImbalanceSigma is the per-rank static work spread (multizone codes
	// like NPB-BT/SP have unequal zones; 0 for perfectly balanced codes).
	ImbalanceSigma float64
}

// Validate reports an error for inconsistent benchmark definitions.
func (b *Benchmark) Validate() error {
	switch {
	case b.Name == "":
		return fmt.Errorf("workload: benchmark with empty name")
	case b.Iterations < 1:
		return fmt.Errorf("workload: %s has %d iterations", b.Name, b.Iterations)
	case b.CyclesPerIter < 0 || b.BytesPerIter < 0:
		return fmt.Errorf("workload: %s has negative work", b.Name)
	case b.CyclesPerIter == 0 && b.BytesPerIter == 0:
		return fmt.Errorf("workload: %s does no work", b.Name)
	case b.ImbalanceSigma < 0 || b.ImbalanceSigma > 0.5:
		return fmt.Errorf("workload: %s imbalance sigma %v outside [0, 0.5]", b.Name, b.ImbalanceSigma)
	case b.Profile.Workload != b.Name:
		return fmt.Errorf("workload: %s profile is keyed %q", b.Name, b.Profile.Workload)
	}
	return nil
}

// ProfileFor returns the benchmark's power profile scaled to the target
// architecture. Reference coefficients are calibrated on HA8K (130 W TDP /
// 62 W DRAM TDP); other parts scale proportionally to their TDPs.
func (b *Benchmark) ProfileFor(arch *module.Arch) module.PowerProfile {
	const refTDP, refDramTDP = 130.0, 62.0
	p := b.Profile
	if k := float64(arch.TDP) / refTDP; k != 1 {
		p = p.ScaleCPU(k)
	}
	if k := float64(arch.DramTDP) / refDramTDP; k != 1 {
		p = p.ScaleDRAM(k)
	}
	return p
}

// Imbalance returns rank's static work multiplier (mean 1), deterministic
// in (seed, benchmark, rank).
func (b *Benchmark) Imbalance(seed uint64, rank int) float64 {
	if b.ImbalanceSigma == 0 {
		return 1
	}
	rng := xrand.NewKeyed(seed, xrand.HashString("imbalance"), xrand.HashString(b.Name), uint64(rank))
	v := 1 + rng.TruncNormal(0, b.ImbalanceSigma, -3, 3)
	if v < 0.1 {
		v = 0.1
	}
	return v
}

// SequentialTime returns the time one rank needs per iteration at frequency
// f on the given architecture, before synchronisation: cycles/f plus
// traffic/BW(f). It is the Model side of the DES.
func (b *Benchmark) SequentialTime(arch *module.Arch, f units.Hertz, imbalance float64) units.Seconds {
	if f <= 0 {
		// A module that cannot run (below its idle floor) would never
		// finish; callers are expected to reject such operating points
		// before simulating. Guard with an effectively-infinite time.
		return units.Seconds(1e18)
	}
	cpu := b.CyclesPerIter * imbalance / float64(f)
	mem := 0.0
	if b.BytesPerIter > 0 {
		mem = b.BytesPerIter * imbalance / arch.MemBWAt(f)
	}
	return units.Seconds(cpu + mem)
}

// FrequencySensitivity returns the fraction of per-iteration time that
// scales with frequency at the architecture's nominal point — the
// "CPU-boundedness" the paper discusses in Section 4.3.
func (b *Benchmark) FrequencySensitivity(arch *module.Arch) float64 {
	cpu := b.CyclesPerIter / float64(arch.FNom)
	mem := 0.0
	if b.BytesPerIter > 0 {
		mem = b.BytesPerIter / arch.MemBWAt(arch.FNom)
	}
	if cpu+mem == 0 {
		return 0
	}
	return cpu / (cpu + mem)
}

// Program builds the benchmark's SPMD program for the given communicator
// size. Halo patterns are laid out on a near-cubic 3-D torus.
//
// All per-rank operations are materialised once here: the simulator calls
// Round once per rank per round in its hot loop, so returning prebuilt
// (already boxed) ops keeps that loop allocation-free. Imbalance draws and
// torus neighbour lists are likewise computed once per rank instead of once
// per round.
func (b *Benchmark) Program(size int, seed uint64) (simmpi.Program, error) {
	if size < 1 {
		return nil, fmt.Errorf("workload: program size %d", size)
	}
	p := &program{bench: b, size: size, seed: seed}
	p.computeOps = make([]simmpi.Op, size)
	for rank := 0; rank < size; rank++ {
		w := b.Imbalance(seed, rank)
		p.computeOps[rank] = simmpi.Compute{
			Cycles: b.CyclesPerIter * w,
			Bytes:  b.BytesPerIter * w,
		}
	}
	switch b.Comm {
	case CommHalo3D:
		p.topo = NewTorus3D(size)
		p.commOps = make([]simmpi.Op, size)
		// One flat backing array for every rank's neighbour list; capacity 6
		// covers the worst case (±1 in three dimensions), so the sub-slices
		// handed to Sendrecv ops stay valid — no reallocation can occur.
		flat := make([]int, 0, 6*size)
		for rank := 0; rank < size; rank++ {
			start := len(flat)
			flat = p.topo.AppendNeighbors(flat, rank)
			p.commOps[rank] = simmpi.Sendrecv{Peers: flat[start:len(flat):len(flat)], Bytes: b.MsgBytes}
		}
	case CommAllreduce, CommFinalReduce:
		p.commOp = simmpi.Allreduce{Bytes: b.MsgBytes}
	}
	return p, nil
}

// program implements simmpi.Program for a Benchmark.
type program struct {
	bench *Benchmark
	size  int
	seed  uint64
	topo  *Torus3D

	// Prebuilt, pre-boxed operations (see Program). computeOps[rank] is the
	// rank's compute op; commOps[rank] is its halo exchange; commOp is the
	// shared collective for reduction patterns.
	computeOps []simmpi.Op
	commOps    []simmpi.Op
	commOp     simmpi.Op
}

// Rounds implements simmpi.Program: one compute round per iteration, plus a
// communication round per iteration for iterative patterns, plus one final
// collective for CommFinalReduce.
func (p *program) Rounds() int {
	switch p.bench.Comm {
	case CommHalo3D, CommAllreduce:
		return 2 * p.bench.Iterations
	case CommFinalReduce:
		return p.bench.Iterations + 1
	default:
		return p.bench.Iterations
	}
}

// Round implements simmpi.Program by indexing the prebuilt op tables.
func (p *program) Round(rank, r int) simmpi.Op {
	switch p.bench.Comm {
	case CommHalo3D, CommAllreduce:
		if r%2 == 0 {
			return p.computeOps[rank]
		}
		if p.bench.Comm == CommHalo3D {
			return p.commOps[rank]
		}
		return p.commOp
	case CommFinalReduce:
		if r < p.bench.Iterations {
			return p.computeOps[rank]
		}
		return p.commOp
	default:
		return p.computeOps[rank]
	}
}

// Torus3D lays ranks out on a near-cubic 3-D torus for halo exchanges.
type Torus3D struct {
	Dims [3]int
}

// NewTorus3D factors size into three near-equal dimensions (padding is not
// needed: the factorisation is exact because we only shrink factors that
// divide size).
func NewTorus3D(size int) *Torus3D {
	dims := factor3(size)
	return &Torus3D{Dims: dims}
}

// factor3 returns three factors of n with product n, as close to cubic as
// the divisor structure of n allows.
func factor3(n int) [3]int {
	best := [3]int{n, 1, 1}
	bestScore := score3(best)
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			cand := [3]int{a, b, c}
			if s := score3(cand); s < bestScore {
				best, bestScore = cand, s
			}
		}
	}
	sort.Ints(best[:])
	return best
}

// score3 is the spread of a factorisation; smaller is more cubic.
func score3(d [3]int) int {
	min, max := d[0], d[0]
	for _, v := range d[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// coords converts a rank to torus coordinates.
func (t *Torus3D) coords(rank int) (x, y, z int) {
	x = rank % t.Dims[0]
	y = (rank / t.Dims[0]) % t.Dims[1]
	z = rank / (t.Dims[0] * t.Dims[1])
	return
}

// rank converts torus coordinates back to a rank.
func (t *Torus3D) rank(x, y, z int) int {
	return x + t.Dims[0]*(y+t.Dims[1]*z)
}

// Neighbors returns the distinct ±1 torus neighbours of rank in each
// dimension with extent > 1, excluding rank itself.
func (t *Torus3D) Neighbors(rank int) []int {
	return t.AppendNeighbors(nil, rank)
}

// AppendNeighbors appends rank's neighbours (same set and order as
// Neighbors) to dst and returns the extended slice. With a dst of
// sufficient capacity it does not allocate, which lets Program pack every
// rank's list into one flat backing array.
func (t *Torus3D) AppendNeighbors(dst []int, rank int) []int {
	x, y, z := t.coords(rank)
	var cand [6]int
	n := 0
	if d := t.Dims[0]; d > 1 {
		cand[n] = t.rank((x+1)%d, y, z)
		cand[n+1] = t.rank((x+d-1)%d, y, z)
		n += 2
	}
	if d := t.Dims[1]; d > 1 {
		cand[n] = t.rank(x, (y+1)%d, z)
		cand[n+1] = t.rank(x, (y+d-1)%d, z)
		n += 2
	}
	if d := t.Dims[2]; d > 1 {
		cand[n] = t.rank(x, y, (z+1)%d)
		cand[n+1] = t.rank(x, y, (z+d-1)%d)
		n += 2
	}
	base := len(dst)
	for i := 0; i < n; i++ {
		r := cand[i]
		if r == rank {
			continue
		}
		dup := false
		for _, v := range dst[base:] {
			if v == r {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r)
		}
	}
	return dst
}
