package workload

import (
	"math"
	"testing"
	"testing/quick"

	"varpower/internal/cluster"
	"varpower/internal/simmpi"
)

func TestRegistryValidates(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	if len(All()) != 7 {
		t.Errorf("expected 7 benchmarks, have %d", len(All()))
	}
	if len(Evaluated()) != 6 {
		t.Errorf("expected 6 evaluated benchmarks, have %d", len(Evaluated()))
	}
}

func TestByName(t *testing.T) {
	cases := map[string]string{
		"*DGEMM": "*DGEMM", "dgemm": "*DGEMM", "DGEMM": "*DGEMM",
		"stream": "*STREAM", "npbbt": "NPB-BT", "bt": "NPB-BT", // bare NPB names are accepted aliases
		"mvmc": "mVMC", "mhd": "MHD", "ep": "NPB-EP", "npbep": "NPB-EP",
		"nosuch": "",
	}
	for in, want := range cases {
		b, err := ByName(in)
		if want == "" {
			if err == nil {
				t.Errorf("ByName(%q) unexpectedly found %s", in, b.Name)
			}
			continue
		}
		if err != nil {
			t.Errorf("ByName(%q): %v", in, err)
			continue
		}
		if b.Name != want {
			t.Errorf("ByName(%q) = %s, want %s", in, b.Name, want)
		}
	}
}

func TestValidateRejectsBadBenchmarks(t *testing.T) {
	good := DGEMM()
	bad := []func(*Benchmark){
		func(b *Benchmark) { b.Name = "" },
		func(b *Benchmark) { b.Iterations = 0 },
		func(b *Benchmark) { b.CyclesPerIter = -1 },
		func(b *Benchmark) { b.CyclesPerIter, b.BytesPerIter = 0, 0 },
		func(b *Benchmark) { b.ImbalanceSigma = 0.9 },
		func(b *Benchmark) { b.Profile.Workload = "other" },
	}
	for i, mutate := range bad {
		b := *good
		mutate(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestProfileForScalesWithTDP(t *testing.T) {
	b := DGEMM()
	ha := cluster.HA8K().Arch
	cab := cluster.Cab().Arch
	pHA := b.ProfileFor(ha)
	pCab := b.ProfileFor(cab)
	wantRatio := float64(cab.TDP) / float64(ha.TDP)
	gotRatio := float64(pCab.DynPower) / float64(pHA.DynPower)
	if math.Abs(gotRatio-wantRatio) > 1e-9 {
		t.Fatalf("CPU scaling %v, want %v", gotRatio, wantRatio)
	}
	if pHA.DynPower != b.Profile.DynPower {
		t.Fatal("reference arch should be unscaled")
	}
}

func TestFrequencySensitivityOrdering(t *testing.T) {
	arch := cluster.HA8K().Arch
	d := DGEMM().FrequencySensitivity(arch)
	s := StarSTREAM().FrequencySensitivity(arch)
	e := EP().FrequencySensitivity(arch)
	if !(e >= d && d > s) {
		t.Fatalf("sensitivity ordering wrong: EP=%v DGEMM=%v STREAM=%v", e, d, s)
	}
	if d < 0.9 {
		t.Errorf("DGEMM sensitivity %v, want ≥ 0.9 (compute-bound)", d)
	}
	if s > 0.5 {
		t.Errorf("STREAM sensitivity %v, want ≤ 0.5 (memory-bound)", s)
	}
}

func TestSequentialTimeDecreasing(t *testing.T) {
	arch := cluster.HA8K().Arch
	for _, b := range All() {
		lo := b.SequentialTime(arch, arch.FMin, 1)
		hi := b.SequentialTime(arch, arch.FNom, 1)
		if hi >= lo {
			t.Errorf("%s: time at fnom (%v) not below time at fmin (%v)", b.Name, hi, lo)
		}
	}
	if tm := DGEMM().SequentialTime(arch, 0, 1); tm < 1e17 {
		t.Error("zero frequency should yield effectively infinite time")
	}
}

func TestImbalance(t *testing.T) {
	b := BT()
	if b.Imbalance(1, 3) != b.Imbalance(1, 3) {
		t.Fatal("imbalance not deterministic")
	}
	if MHD().Imbalance(1, 3) != 1 {
		t.Fatal("balanced benchmark has imbalance")
	}
	var sum float64
	const n = 2000
	for r := 0; r < n; r++ {
		v := b.Imbalance(1, r)
		if v <= 0 {
			t.Fatalf("non-positive imbalance %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Fatalf("imbalance mean %v, want ≈ 1", mean)
	}
}

func TestProgramShapes(t *testing.T) {
	for _, b := range All() {
		p, err := b.Program(8, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		rounds := p.Rounds()
		switch b.Comm {
		case CommNone:
			if rounds != b.Iterations {
				t.Errorf("%s rounds=%d, want %d", b.Name, rounds, b.Iterations)
			}
		case CommHalo3D, CommAllreduce:
			if rounds != 2*b.Iterations {
				t.Errorf("%s rounds=%d, want %d", b.Name, rounds, 2*b.Iterations)
			}
		case CommFinalReduce:
			if rounds != b.Iterations+1 {
				t.Errorf("%s rounds=%d, want %d", b.Name, rounds, b.Iterations+1)
			}
		}
		// Every round must be SPMD-consistent across ranks.
		for r := 0; r < rounds; r++ {
			proto := p.Round(0, r)
			for rank := 1; rank < 8; rank++ {
				if kindOf(p.Round(rank, r)) != kindOf(proto) {
					t.Fatalf("%s: op kind mismatch at round %d rank %d", b.Name, r, rank)
				}
			}
		}
	}
}

func kindOf(op simmpi.Op) string {
	switch op.(type) {
	case simmpi.Compute:
		return "compute"
	case simmpi.Sendrecv:
		return "sendrecv"
	case simmpi.Barrier:
		return "barrier"
	case simmpi.Allreduce:
		return "allreduce"
	}
	return "?"
}

func TestFactor3(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 17, 64, 100, 1920, 1000} {
		d := factor3(n)
		if d[0]*d[1]*d[2] != n {
			t.Fatalf("factor3(%d) = %v, product wrong", n, d)
		}
		if d[0] > d[1] || d[1] > d[2] {
			t.Fatalf("factor3(%d) = %v not sorted", n, d)
		}
	}
	if d := factor3(64); d != [3]int{4, 4, 4} {
		t.Fatalf("factor3(64) = %v, want cubic", d)
	}
	if d := factor3(1920); d != [3]int{10, 12, 16} {
		t.Fatalf("factor3(1920) = %v, want {10,12,16}", d)
	}
}

func TestTorusNeighborsSymmetric(t *testing.T) {
	f := func(sz uint8) bool {
		size := int(sz)%200 + 2
		topo := NewTorus3D(size)
		for r := 0; r < size; r++ {
			for _, p := range topo.Neighbors(r) {
				if p == r || p < 0 || p >= size {
					return false
				}
				// Symmetry: if p is a neighbour of r, r is one of p.
				found := false
				for _, q := range topo.Neighbors(p) {
					if q == r {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTorusNeighborCount(t *testing.T) {
	topo := NewTorus3D(64) // 4×4×4
	for r := 0; r < 64; r++ {
		if n := len(topo.Neighbors(r)); n != 6 {
			t.Fatalf("rank %d has %d neighbours on a 4×4×4 torus, want 6", r, n)
		}
	}
	// Degenerate dimensions collapse duplicate neighbours.
	small := NewTorus3D(2)
	if n := len(small.Neighbors(0)); n != 1 {
		t.Fatalf("2-rank torus neighbour count %d, want 1", n)
	}
}

func TestCommPatternString(t *testing.T) {
	if CommHalo3D.String() != "halo-3d" || CommNone.String() != "none" {
		t.Error("pattern names wrong")
	}
	if CommPattern(99).String() == "" {
		t.Error("unknown pattern should still format")
	}
}
