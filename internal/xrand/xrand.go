// Package xrand provides deterministic, splittable pseudo-random streams.
//
// The variability model must assign each (system, module, workload) a stable
// random draw: module 1234 of the HA8K preset has the same leakage factor in
// every process, test, and benchmark, regardless of evaluation order. The
// standard library's global rand source is neither splittable nor stable
// across call ordering, so this package implements SplitMix64 (Steele,
// Lea & Flood, OOPSLA '14) with hash-derived substreams.
package xrand

import "math"

// Stream is a deterministic SplitMix64 generator. The zero value is a valid
// stream seeded with 0.
type Stream struct {
	state uint64
}

// New returns a stream seeded from the given value.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// NewKeyed returns a stream whose seed is derived by hashing the parent seed
// with a sequence of keys, giving independent substreams for e.g.
// (systemSeed, moduleID) or (systemSeed, moduleID, workloadName).
func NewKeyed(seed uint64, keys ...uint64) *Stream {
	s := seed
	for _, k := range keys {
		s = mix(s ^ mix(k))
	}
	return &Stream{state: s}
}

// HashString folds a string into a uint64 key (FNV-1a) for use with NewKeyed.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics when n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Normal returns a draw from N(mean, sigma^2) using the Box–Muller
// transform. Each call consumes two uniforms; the second Box–Muller variate
// is deliberately discarded to keep the stream's consumption pattern simple
// and independent of call history.
func (s *Stream) Normal(mean, sigma float64) float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + sigma*z
}

// LogNormal returns exp(N(mu, sigma^2)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// TruncNormal returns a draw from N(mean, sigma^2) truncated to [lo, hi] by
// rejection, falling back to clamping after 64 attempts so the generator
// never loops unboundedly for pathological bounds.
func (s *Stream) TruncNormal(mean, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	v := s.Normal(mean, sigma)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
