package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestKeyedIndependence(t *testing.T) {
	a := NewKeyed(1, 10)
	b := NewKeyed(1, 11)
	equal := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("keyed streams shared %d of 64 values", equal)
	}
	// Key order matters.
	c := NewKeyed(1, 10, 20).Uint64()
	d := NewKeyed(1, 20, 10).Uint64()
	if c == d {
		t.Fatal("key order did not change the stream")
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("alpha") != HashString("alpha") {
		t.Fatal("HashString not deterministic")
	}
	if HashString("alpha") == HashString("beta") {
		t.Fatal("HashString collides on trivially distinct inputs")
	}
	if HashString("") == 0 {
		t.Fatal("empty string should hash to FNV offset, not 0")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("Normal mean = %v, want 3±0.03", mean)
	}
	if math.Abs(std-2) > 0.03 {
		t.Errorf("Normal std = %v, want 2±0.03", std)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		v := s.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
	// Pathological bounds far from the mean still terminate and clamp.
	v := s.TruncNormal(0, 0.001, 5, 6)
	if v < 5 || v > 6 {
		t.Fatalf("TruncNormal fallback clamp failed: %v", v)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(15)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of [2,5): %v", v)
		}
	}
}

func TestIntn(t *testing.T) {
	s := New(17)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d in 1000 draws", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZeroValueStreamUsable(t *testing.T) {
	var s Stream
	_ = s.Uint64()
	_ = s.Float64()
}
